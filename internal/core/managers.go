package core

import (
	"sort"

	"repro/internal/charm"
	"repro/internal/des"
	"repro/internal/synthpop"
	"repro/internal/xrand"
)

// personManager is a PM chare (Figure 1): it manages a set of person
// objects — their PTTS state, daily schedule decisions and visit messages.
type personManager struct {
	eng     *Engine
	id      int32
	persons []int32
}

func (pm *personManager) Recv(ctx *charm.Ctx, msg charm.Message) {
	switch m := msg.(type) {
	case msgComputeVisits:
		pm.computeVisits(ctx, m.Day)
	case infectMsg:
		pm.eng.infectionBuf[pm.id] = append(pm.eng.infectionBuf[pm.id], m)
	case msgApplyUpdates:
		pm.applyUpdates(ctx, m.Day)
	default:
		panic("core: personManager received unknown message")
	}
}

// computeVisits is phase 1 for this PM's persons: apply vaccination
// orders, evaluate behavioral filters (closures, isolation, demand
// reduction), and send one visit message per kept visit.
func (pm *personManager) computeVisits(ctx *charm.Ctx, day int) {
	e := pm.eng
	eff := e.effects
	vaccinate := eff.VaccinateNow
	vacID, hasVac := e.model.TreatmentByName("vaccinated")

	for _, p := range pm.persons {
		hs := &e.health[p]
		// Vaccination campaign: untreated persons get the treatment with
		// probability VaccinateNow, keyed for partition invariance.
		if vaccinate > 0 && hasVac && hs.Treatment == 0 {
			if xrand.KeyedFloat64(0xacc1, e.cfg.Seed, uint64(p), uint64(day)) < vaccinate {
				hs.Treatment = vacID
			}
		}
		stateName := e.stateNames[hs.State]
		isolated := eff.Isolated(stateName)
		inf := e.model.Infectivity(hs.State, hs.Treatment)
		sus := e.model.Susceptibility(hs.State, hs.Treatment)

		for _, v := range e.pop.PersonVisits(p) {
			loc := &e.pop.Locations[v.Loc]
			typeName := loc.Type.String()
			if loc.Type != synthpop.Home {
				if isolated {
					continue
				}
				if eff.Closed(typeName) {
					continue
				}
				if r := eff.Reduction(typeName); r > 0 {
					if xrand.KeyedFloat64(0x4edc, e.cfg.Seed, uint64(p), uint64(v.Loc), uint64(day)) < r {
						continue
					}
				}
			}
			msg := visitMsg{
				Person:  p,
				Loc:     v.Loc,
				Sub:     v.Sub,
				OrigSub: loc.SubBase + v.Sub,
				Start:   v.Start,
				End:     v.End,
				Inf:     float32(inf),
				Sus:     float32(sus),
			}
			ctx.Send(charm.ChareRef{Array: e.lmArr, Index: e.lmOf[v.Loc]}, msg)
			// Mixing mode on a split location: replicate the infectious
			// visitor into the sibling fragments so cross-sublocation
			// pairs are still evaluated (Figure 6(b): "divide the
			// susceptibles while replicating the infectious").
			if e.cfg.Mixing > 0 && inf > 0 {
				for _, frag := range e.fragments[loc.Origin] {
					if frag == v.Loc {
						continue
					}
					rep := msg
					rep.Loc = frag
					rep.Sus = 0 // replicas infect; they are infected at home
					ctx.Send(charm.ChareRef{Array: e.lmArr, Index: e.lmOf[frag]}, rep)
				}
			}
		}
	}
}

// applyUpdates is phase 5/6: resolve buffered infect messages (earliest
// exposure wins), advance dwell clocks and PTTS transitions, and
// contribute the global health-state counts.
func (pm *personManager) applyUpdates(ctx *charm.Ctx, day int) {
	e := pm.eng
	buf := e.infectionBuf[pm.id]
	e.infectionBuf[pm.id] = nil
	// Canonical resolution order: infections may arrive from many LMs in
	// any order; sort so the outcome is order-independent.
	sort.Slice(buf, func(i, j int) bool {
		a, b := buf[i], buf[j]
		if a.Person != b.Person {
			return a.Person < b.Person
		}
		if a.Minute != b.Minute {
			return a.Minute < b.Minute
		}
		return a.Infector < b.Infector
	})
	var newInf int64
	for i := 0; i < len(buf); {
		p := buf[i].Person
		j := i
		for j < len(buf) && buf[j].Person == p {
			j++
		}
		hs := &e.health[p]
		if e.model.Susceptibility(hs.State, hs.Treatment) > 0 {
			hs.State = e.model.InfectTarget
			hs.DaysLeft = int32(e.model.SampleDwell(e.model.InfectTarget, uint64(p), uint64(day)))
			hs.Infected = true
			newInf++
		}
		i = j
	}
	if newInf > 0 {
		ctx.Contribute("newinfections", newInf)
	}

	// Dwell/transition progression for everyone this PM owns.
	for _, p := range pm.persons {
		hs := &e.health[p]
		if hs.DaysLeft > 0 {
			hs.DaysLeft--
		}
		if hs.DaysLeft == 0 {
			next, ok := e.model.NextState(hs.State, hs.Treatment, uint64(p), uint64(day))
			if ok {
				hs.State = next
				d := e.model.SampleDwell(next, uint64(p), uint64(day))
				if d > 1<<30 {
					hs.DaysLeft = -1 // absorbing
				} else {
					hs.DaysLeft = int32(d)
				}
			} else {
				hs.DaysLeft = -1
			}
		}
		ctx.Contribute("state:"+e.stateNames[hs.State], 1)
	}
}

// locationManager is an LM chare: it buffers inbound visit messages and
// replays them as the per-location DES in phase 2.
type locationManager struct {
	eng     *Engine
	id      int32
	locs    []int32
	pending map[int32][]des.Visitor
}

func (lm *locationManager) Recv(ctx *charm.Ctx, msg charm.Message) {
	switch m := msg.(type) {
	case visitMsg:
		lm.pending[m.Loc] = append(lm.pending[m.Loc], des.Visitor{
			Person:         m.Person,
			Sub:            m.Sub,
			OrigSub:        m.OrigSub,
			Start:          m.Start,
			End:            m.End,
			Infectivity:    float64(m.Inf),
			Susceptibility: float64(m.Sus),
		})
	case msgRunDES:
		lm.runDES(ctx, m.Day)
	default:
		panic("core: locationManager received unknown message")
	}
}

func (lm *locationManager) runDES(ctx *charm.Ctx, day int) {
	e := lm.eng
	var result des.Result
	var events, interactions, trials int64
	for _, locID := range lm.locs {
		visitors := lm.pending[locID]
		if len(visitors) == 0 {
			continue
		}
		delete(lm.pending, locID)
		loc := &e.pop.Locations[locID]
		result.Reset()
		des.Simulate(visitors, des.Params{
			Day: uint64(day) ^ e.cfg.Seed,
			// Keys use the pre-splitLoc identity so splitting cannot
			// change outcomes.
			LocKey:  uint64(loc.Origin),
			SubBase: loc.SubBase,
			Tau:     e.model.Transmissibility,
			Mixing:  e.cfg.Mixing,
		}, &result)
		events += int64(result.Events)
		interactions += result.Interactions
		trials += result.Trials
		if e.locEvents != nil {
			e.locEvents[locID] += int64(result.Events)
			e.locInteractions[locID] += result.Interactions
		}
		for _, inf := range result.Infections {
			ctx.Send(charm.ChareRef{Array: e.pmArr, Index: e.pmOf[inf.Person]}, infectMsg{
				Person:   inf.Person,
				Infector: inf.Infector,
				Minute:   inf.Minute,
			})
		}
	}
	// Clear any leftovers (visits to locations whose DES did not run are
	// impossible, but a stray map entry would leak across days).
	for k := range lm.pending {
		delete(lm.pending, k)
	}
	if events > 0 {
		ctx.Contribute("events", events)
	}
	if interactions > 0 {
		ctx.Contribute("interactions", interactions)
	}
	if trials > 0 {
		ctx.Contribute("trials", trials)
	}
}
