package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/disease"
	"repro/internal/interventions"
	"repro/internal/splitloc"
	"repro/internal/stats"
)

// fullTrajectory compresses a result into every epidemic observable a
// kernel must reproduce exactly: per-day new infections plus the full
// per-day state-count map.
func fullTrajectory(t *testing.T, res *Result) []int64 {
	t.Helper()
	var sig []int64
	for _, d := range res.Days {
		sig = append(sig, d.NewInfections)
		for _, name := range []string{"susceptible", "latent", "infectious",
			"symptomatic", "asymptomatic", "recovered", "dead", "uninfected",
			"exposed", "immune"} {
			if c, ok := d.Counts[name]; ok {
				sig = append(sig, c)
			}
		}
	}
	sig = append(sig, res.TotalInfections)
	return sig
}

func seedModels(t *testing.T) map[string]*disease.Model {
	t.Helper()
	models := map[string]*disease.Model{"builtin-hot": hotModel()}
	paths, err := filepath.Glob("../../models/*.dm")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := disease.Parse(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		// The seed models are calibrated for metro-scale populations; scale
		// transmissibility up so a 3000-person test run actually spreads and
		// the kernels have infections to disagree about.
		m.Transmissibility *= 4
		models[filepath.Base(p)] = m
	}
	if len(models) < 2 {
		t.Fatal("no seed models found")
	}
	return models
}

func seedScenarios(t *testing.T) map[string]string {
	t.Helper()
	scenarios := map[string]string{"none": ""}
	paths, err := filepath.Glob("../../scenarios/*.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		scenarios[filepath.Base(p)] = string(b)
	}
	if len(scenarios) < 2 {
		t.Fatal("no seed scenarios found")
	}
	return scenarios
}

// TestKernelAutoMatchesDense is the tentpole oracle: the active-set
// stepper must be byte-identical to the dense kernel on every seed
// model, every seed scenario and across rank counts — same per-day new
// infections, same per-day state counts, same totals.
func TestKernelAutoMatchesDense(t *testing.T) {
	pop := testPop(t)
	models := seedModels(t)
	scenarios := seedScenarios(t)

	runPair := func(t *testing.T, cfg Config) {
		t.Helper()
		dense := cfg
		dense.Kernel = KernelDense
		auto := cfg
		auto.Kernel = KernelAuto
		dres := run(t, dense)
		if cfg.Scenario != nil {
			cfg.Scenario.Reset() // Rule firing is one-shot per Scenario value
		}
		ares := run(t, auto)
		if got, want := fullTrajectory(t, ares), fullTrajectory(t, dres); !sameSignature(got, want) {
			t.Fatalf("kernel=auto diverged from kernel=dense\nauto:  %v\ndense: %v", got, want)
		}
		if ares.KernelDays[kernelActive] == 0 {
			t.Fatalf("auto run never used the active stepper: %v", ares.KernelDays)
		}
	}

	for mname, m := range models {
		for sname, src := range scenarios {
			t.Run(mname+"/"+sname, func(t *testing.T) {
				cfg := Config{Population: pop, Disease: m,
					Days: 18, Seed: 17, InitialInfections: 5, Ranks: 3}
				if src != "" {
					sc, err := interventions.Parse(src)
					if err != nil {
						t.Fatal(err)
					}
					cfg.Scenario = sc
				}
				runPair(t, cfg)
			})
		}
	}

	t.Run("ranks", func(t *testing.T) {
		for _, ranks := range []int{1, 8} {
			runPair(t, Config{Population: pop, Disease: hotModel(),
				Days: 18, Seed: 23, InitialInfections: 5, Ranks: ranks})
		}
	})

	t.Run("parallel", func(t *testing.T) {
		runPair(t, Config{Population: pop, Disease: hotModel(),
			Days: 18, Seed: 23, InitialInfections: 5, Ranks: 4, Parallel: true})
	})

	t.Run("mixing-split", func(t *testing.T) {
		split, st, err := splitloc.SplitPopulation(pop, splitloc.Options{MaxPartitions: 2048})
		if err != nil {
			t.Fatal(err)
		}
		if st.NumSplit == 0 {
			t.Skip("nothing split")
		}
		runPair(t, Config{Population: split, Disease: hotModel(),
			Days: 15, Seed: 31, InitialInfections: 5, Ranks: 5, Mixing: 0.3})
	})
}

// TestKernelAutoReducesWork pins the mechanism behind the speedup, not
// just the equivalence: with one index case, the active-set stepper must
// move far fewer phase-1 messages than the dense broadcast over the
// same days.
func TestKernelAutoReducesWork(t *testing.T) {
	pop := testPop(t)
	mk := func(kernel string) Config {
		return Config{Population: pop, Disease: hotModel(), Kernel: kernel,
			Days: 10, Seed: 5, InitialInfections: 1, Ranks: 3}
	}
	dres := run(t, mk(KernelDense))
	ares := run(t, mk(KernelAuto))
	var dmsg, amsg int64
	for i := range dres.Days {
		dmsg += dres.Days[i].PersonPhase.Messages
		amsg += ares.Days[i].PersonPhase.Messages
	}
	if amsg*2 > dmsg {
		t.Fatalf("active stepper moved %d visit messages vs dense %d; want < half", amsg, dmsg)
	}
}

// TestIncrementalCountsMatchRescan pins the incremental per-state
// counters (which now feed both scenario triggers and day reports)
// against a full rescan of the health array, after days that include
// infections, progressions and interventions.
func TestIncrementalCountsMatchRescan(t *testing.T) {
	pop := testPop(t)
	sc, err := interventions.Parse(mustRead(t, "../../scenarios/pandemic-response.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []string{KernelDense, KernelAuto, KernelEvent} {
		e, err := New(Config{Population: pop, Disease: hotModel(), Scenario: sc,
			Days: 20, Seed: 9, InitialInfections: 5, Ranks: 3, Kernel: kernel})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		rescan := make(map[string]int, len(e.stateNames))
		for p := range e.health {
			rescan[e.stateNames[e.health[p].State]]++
		}
		got := e.countStates()
		if len(got) != len(rescan) {
			t.Fatalf("kernel %s: incremental counts %v, rescan %v", kernel, got, rescan)
		}
		for name, n := range rescan {
			if got[name] != n {
				t.Fatalf("kernel %s: incremental counts %v, rescan %v", kernel, got, rescan)
			}
		}
	}
}

func mustRead(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestEventKernelStatisticalEquivalence is the Gillespie oracle: over a
// set of seeds, the event kernel's attack-rate and peak-day confidence
// intervals must overlap the dense kernel's. KernelThreshold 1 keeps the
// event path engaged for the whole run, so the test exercises it alone
// rather than the hybrid.
func TestEventKernelStatisticalEquivalence(t *testing.T) {
	pop := testPop(t)
	var denseAttack, eventAttack, densePeak, eventPeak []float64
	for seed := uint64(1); seed <= 8; seed++ {
		mk := func(kernel string, thr float64) Config {
			return Config{Population: pop, Disease: hotModel(),
				Days: 30, Seed: seed, InitialInfections: 5, Ranks: 3,
				Kernel: kernel, KernelThreshold: thr}
		}
		dres := run(t, mk(KernelDense, 0))
		eres := run(t, mk(KernelEvent, 1))
		if eres.KernelDays[KernelEvent] != int64(len(eres.Days)) {
			t.Fatalf("seed %d: event run used kernels %v, want all %d days event",
				seed, eres.KernelDays, len(eres.Days))
		}
		denseAttack = append(denseAttack, dres.AttackRate)
		eventAttack = append(eventAttack, eres.AttackRate)
		densePeak = append(densePeak, peakDay(dres))
		eventPeak = append(eventPeak, peakDay(eres))
	}
	assertOverlap := func(what string, a, b []float64) {
		t.Helper()
		ca := stats.MeanCI(a, 0.99)
		cb := stats.MeanCI(b, 0.99)
		if ca.Lo > cb.Hi || cb.Lo > ca.Hi {
			t.Fatalf("%s CIs do not overlap: dense [%v, %v] vs event [%v, %v]",
				what, ca.Lo, ca.Hi, cb.Lo, cb.Hi)
		}
	}
	assertOverlap("attack rate", denseAttack, eventAttack)
	assertOverlap("peak day", densePeak, eventPeak)
}

func peakDay(res *Result) float64 {
	day, peak := 0, int64(-1)
	for _, d := range res.Days {
		if d.NewInfections > peak {
			peak, day = d.NewInfections, d.Day
		}
	}
	return float64(day)
}

// TestEventKernelHysteresis drives prevalence through the threshold band
// and asserts the run actually switches kernels (event days and
// non-event days both present) instead of flapping into one mode.
func TestEventKernelHysteresis(t *testing.T) {
	pop := testPop(t)
	res := run(t, Config{Population: pop, Disease: hotModel(),
		Days: 40, Seed: 1, InitialInfections: 5, Ranks: 3,
		Kernel: KernelEvent, KernelThreshold: 0.002})
	if res.KernelDays[KernelEvent] == 0 {
		t.Fatalf("no event days: %v", res.KernelDays)
	}
	if res.KernelDays[kernelActive]+res.KernelDays[KernelDense] == 0 {
		t.Fatalf("epidemic never left the event kernel: %v", res.KernelDays)
	}
	if res.TotalInfections < 50 {
		t.Fatalf("hybrid run did not spread: %d infections", res.TotalInfections)
	}
}

func TestKernelValidation(t *testing.T) {
	pop := testPop(t)
	base := Config{Population: pop, Disease: hotModel(), Days: 1, Ranks: 1}

	bad := base
	bad.Kernel = "gillespie"
	if _, err := New(bad); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	bad = base
	bad.Kernel = KernelEvent
	bad.Mixing = 0.5
	if _, err := New(bad); err == nil {
		t.Fatal("event kernel with mixing accepted")
	}
	bad = base
	bad.KernelThreshold = 1.5
	if _, err := New(bad); err == nil {
		t.Fatal("out-of-range kernel threshold accepted")
	}
}

// TestDefaultKernelReportsUnlabeled pins the compatibility contract: a
// config that never mentions kernels produces exactly the historical
// report shape — no per-day kernel labels, no KernelDays map.
func TestDefaultKernelReportsUnlabeled(t *testing.T) {
	pop := testPop(t)
	res := run(t, Config{Population: pop, Disease: hotModel(),
		Days: 5, Seed: 2, InitialInfections: 5, Ranks: 2})
	if res.KernelDays != nil {
		t.Fatalf("default run has KernelDays %v", res.KernelDays)
	}
	for _, d := range res.Days {
		if d.Kernel != "" {
			t.Fatalf("default run labeled day %d as %q", d.Day, d.Kernel)
		}
	}
}
