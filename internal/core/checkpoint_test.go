package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/interventions"
)

func parseScenario(t testing.TB, src string) *interventions.Scenario {
	t.Helper()
	if strings.TrimSpace(src) == "" {
		return nil
	}
	sc, err := interventions.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func combineScenario(base, branch string) string {
	if strings.TrimSpace(base) == "" {
		return branch
	}
	if branch == "" {
		return base
	}
	return strings.TrimRight(base, "\n") + "\n" + branch
}

// branchSchedule is a typed intervention branch whose every trigger lies
// strictly after forkDay, as Schedule.Validate enforces.
func branchSchedule(forkDay int) *interventions.Schedule {
	return &interventions.Schedule{
		Closures:     []interventions.Closure{{LocType: "school", Day: forkDay + 1, Days: 5}},
		Vaccinations: []interventions.Vaccination{{Day: forkDay + 2, Fraction: 0.3}},
		Quarantines:  []interventions.Quarantine{{State: "symptomatic", Day: forkDay + 1, Days: 7}},
	}
}

func resultBytes(t testing.TB, res *Result) []byte {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// forkRun reproduces the sweep executor's fork path: run the base-only
// prefix to forkDay, checkpoint, restore into a fresh engine carrying the
// combined base+branch scenario, and finish the run.
func forkRun(t testing.TB, cfg Config, baseSrc, combinedSrc string, forkDay int) *Result {
	t.Helper()
	pcfg := cfg
	pcfg.Scenario = parseScenario(t, baseSrc)
	pe, err := New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := pe.RunPrefix(forkDay)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := cfg
	bcfg.Scenario = parseScenario(t, combinedSrc)
	be, err := New(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := be.Restore(cp); err != nil {
		t.Fatal(err)
	}
	res, err := be.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestForkMatchesScratch is the tentpole equivalence oracle: for every
// seed model × seed scenario × ranks {1,8}, a run forked from a
// checkpoint at day {0, mid, last} must be byte-identical (full Result
// JSON, phase stats included) to the same run executed from scratch.
func TestForkMatchesScratch(t *testing.T) {
	pop := testPop(t)
	models := seedModels(t)
	scenarios := seedScenarios(t)
	const days = 12

	for mname, m := range models {
		for sname, src := range scenarios {
			for _, ranks := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/%s/r%d", mname, sname, ranks), func(t *testing.T) {
					for _, forkDay := range []int{0, days / 2, days - 1} {
						sched := branchSchedule(forkDay)
						if err := sched.Validate(forkDay); err != nil {
							t.Fatal(err)
						}
						combined := combineScenario(src, sched.Compile())
						cfg := Config{Population: pop, Disease: m,
							Days: days, Seed: 17, InitialInfections: 5, Ranks: ranks}

						scfg := cfg
						scfg.Scenario = parseScenario(t, combined)
						want := resultBytes(t, run(t, scfg))
						got := resultBytes(t, forkRun(t, cfg, src, combined, forkDay))
						if !bytes.Equal(got, want) {
							t.Fatalf("fork day %d diverged from scratch\nfork:    %s\nscratch: %s",
								forkDay, got, want)
						}
					}
				})
			}
		}
	}
}

// TestForkMatchesScratchKernels re-runs the oracle under each explicit
// kernel. The event kernel is the hard case: its hazard accumulation
// walks the sparse infectious sets in insertion order, so this is what
// the checkpoint's order-verbatim serialization exists for.
func TestForkMatchesScratchKernels(t *testing.T) {
	pop := testPop(t)
	const days, forkDay = 20, 10
	sched := branchSchedule(forkDay)
	combined := combineScenario("", sched.Compile())
	for _, kernel := range []string{KernelDense, KernelAuto, KernelEvent} {
		cfg := Config{Population: pop, Disease: hotModel(),
			Days: days, Seed: 23, InitialInfections: 5, Ranks: 3,
			Kernel: kernel, KernelThreshold: 0.01}
		scfg := cfg
		scfg.Scenario = parseScenario(t, combined)
		want := resultBytes(t, run(t, scfg))
		got := resultBytes(t, forkRun(t, cfg, "", combined, forkDay))
		if !bytes.Equal(got, want) {
			t.Fatalf("kernel %q: fork diverged from scratch\nfork:    %s\nscratch: %s",
				kernel, got, want)
		}
	}
}

// TestRunPrefixThenRun pins the prefix engine's own continuation: after
// RunPrefix the same engine's Run must finish the remaining days and
// return the uninterrupted run's exact Result (this is the path the
// sweep executor uses for the baseline branch).
func TestRunPrefixThenRun(t *testing.T) {
	pop := testPop(t)
	src := mustRead(t, "../../scenarios/school-closure.txt")
	mk := func() Config {
		return Config{Population: pop, Disease: hotModel(), Scenario: parseScenario(t, src),
			Days: 14, Seed: 3, InitialInfections: 5, Ranks: 4}
	}
	want := resultBytes(t, run(t, mk()))

	e, err := New(mk())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunPrefix(7); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := resultBytes(t, res); !bytes.Equal(got, want) {
		t.Fatalf("prefix+continue diverged from scratch\ngot:  %s\nwant: %s", got, want)
	}
}

func checkpointFixture(t testing.TB, cfg Config, day int) *Checkpoint {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := e.RunPrefix(day)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestRestoreRejectsCorrupt feeds Restore checkpoints that are
// internally inconsistent or mismatched with the engine; each must be
// refused before any restored run can silently diverge.
func TestRestoreRejectsCorrupt(t *testing.T) {
	pop := testPop(t)
	base := func() Config {
		return Config{Population: pop, Disease: hotModel(),
			Days: 10, Seed: 7, InitialInfections: 5, Ranks: 4}
	}
	cases := []struct {
		name   string
		cfg    func() Config
		tamper func(cp *Checkpoint)
	}{
		{"truncated persons", base, func(cp *Checkpoint) { cp.States = cp.States[:10] }},
		{"unknown state", base, func(cp *Checkpoint) { cp.States[0] = 99 }},
		{"unknown treatment", base, func(cp *Checkpoint) { cp.Treatments[0] = 99 }},
		{"day beyond horizon", base, func(cp *Checkpoint) { cp.Day = 11 }},
		{"negative day", base, func(cp *Checkpoint) { cp.Day = -1 }},
		{"report count mismatch", base, func(cp *Checkpoint) { cp.Days = cp.Days[:2] }},
		{"excess rule latches", base, func(cp *Checkpoint) { cp.RuleFired = []bool{true, false} }},
		{"nil effects", base, func(cp *Checkpoint) { cp.Effects = nil }},
		{"foreign person in set", base, func(cp *Checkpoint) {
			// Person 0 belongs to PM 0's rank; claiming it in the last PM's
			// infectious set must trip the membership check.
			pm := len(cp.Infectious) - 1
			cp.Infectious[pm] = append(cp.Infectious[pm], 0)
		}},
		{"duplicate in set", base, func(cp *Checkpoint) {
			for pm := range cp.Progressing {
				if len(cp.Progressing[pm]) > 0 {
					cp.Progressing[pm] = append(cp.Progressing[pm], cp.Progressing[pm][0])
					return
				}
			}
			panic("no progressing persons in fixture")
		}},
		{"manager count mismatch", func() Config {
			cfg := base()
			cfg.Ranks = 2
			return cfg
		}, func(cp *Checkpoint) {}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := checkpointFixture(t, base(), 5)
			tc.tamper(cp)
			e, err := New(tc.cfg())
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Restore(cp); err == nil {
				t.Fatal("corrupt checkpoint accepted")
			}
		})
	}
}

// TestCheckpointNeedsFreshEngine pins the seam's misuse guards: neither
// RunPrefix nor Restore may run on an engine that already simulated days,
// and a prefix cannot overrun the configured horizon.
func TestCheckpointNeedsFreshEngine(t *testing.T) {
	pop := testPop(t)
	cfg := Config{Population: pop, Disease: hotModel(),
		Days: 6, Seed: 1, InitialInfections: 5, Ranks: 2}

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.RunDay(1)
	if _, err := e.RunPrefix(2); err == nil {
		t.Fatal("RunPrefix accepted a stepped engine")
	}
	if err := e.Restore(checkpointFixture(t, cfg, 0)); err == nil {
		t.Fatal("Restore accepted a stepped engine")
	}

	e2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.RunPrefix(7); err == nil {
		t.Fatal("RunPrefix accepted a prefix beyond cfg.Days")
	}
	if _, err := e2.RunPrefix(3); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.RunPrefix(3); err == nil {
		t.Fatal("RunPrefix accepted a second prefix")
	}
}
