// Package des implements the per-location sequential discrete-event
// simulation of EpiSimdemics (Section II-B, step 3): every visit message a
// location received is converted into an arrive and a depart event, events
// are executed in time order while tracking sublocation occupancy, and each
// co-presence of a susceptible and an infectious person triggers a
// transmission trial. Successful trials yield the "infect" messages sent
// back to person objects.
//
// The package also produces the event and interaction counts that feed the
// static and dynamic workload models of Section III-A, and its execution
// time is what the load model is fitted against (Figure 3(a)).
package des

import (
	"math"
	"sort"

	"repro/internal/xrand"
)

// Visitor is one visit at the location being simulated, annotated with the
// visitor's effective disease parameters for the day. Exactly one of
// Infectivity/Susceptibility is typically non-zero; both zero means the
// person can neither infect nor be infected today (latent, recovered).
type Visitor struct {
	Person         int32
	Sub            int32 // sublocation index within this location
	Start, End     int16 // minutes of day, [Start, End)
	Infectivity    float64
	Susceptibility float64
	// OrigSub is the visitor's sublocation in the pre-splitLoc numbering
	// of the original location. Only consulted in mixing mode (Params.
	// Mixing > 0), where it both groups occupancy and keys trials so that
	// retain-edges splitting with infectious replication reproduces the
	// unsplit outcome exactly. May lie outside this fragment's local
	// range for replicated infectious visitors.
	OrigSub int32
}

// Infection is a successful transmission: an "infect" message.
type Infection struct {
	Person   int32 // newly infected person
	Infector int32
	Minute   int16 // co-presence start: when exposure began
}

// Params identifies the location and day being simulated, for keyed draws.
type Params struct {
	Day uint64
	// LocKey identifies the location *stably across splitLoc*: split
	// fragments pass the original location id, so splitting cannot change
	// any transmission outcome (the correctness oracle of the repo).
	LocKey uint64
	// SubBase offsets this fragment's sublocation indices into the
	// original location's sublocation numbering.
	SubBase int32
	// Tau is the disease transmissibility (τ in the transmission function).
	Tau float64
	// Mixing enables the inter-sublocation mixing model of the paper's
	// future work (Section III-C, "elevators and hallways"): co-present
	// people in *different* sublocations of the same location also
	// interact, with transmission probability scaled by this factor
	// (0 disables; 1 makes rooms irrelevant). In mixing mode occupancy is
	// grouped by Visitor.OrigSub.
	Mixing float64
}

// Result accumulates the outcome and the workload counters of one
// location-day.
type Result struct {
	Infections []Infection
	// Events is the number of arrive+depart events (2 × visits): the X
	// input of the static load model.
	Events int
	// Interactions is the number of co-present person pairs examined
	// (any health states) — the "sum of interactions" input of the dynamic
	// load model.
	Interactions int64
	// Trials is the number of susceptible–infectious pairs that underwent
	// a transmission trial.
	Trials int64
	// ContactMinutes sums pairwise overlap durations over all trials.
	ContactMinutes int64
	// SumReciprocal sums 1/(pair overlap) over trials — the "sum of the
	// reciprocal of interactions" term of the dynamic model.
	SumReciprocal float64
}

// Reset clears the result for reuse, keeping allocated capacity.
func (r *Result) Reset() {
	r.Infections = r.Infections[:0]
	r.Events = 0
	r.Interactions = 0
	r.Trials = 0
	r.ContactMinutes = 0
	r.SumReciprocal = 0
}

// event is an arrive or depart of one visitor.
type event struct {
	minute int16
	arrive bool
	idx    int32 // visitor index
}

// Simulate executes the location-day DES and appends the outcome to out.
// Infections are deduplicated per person (earliest exposure wins, ties
// broken by smallest infector id), so the output is a canonical set that
// does not depend on visitor ordering.
func Simulate(visitors []Visitor, p Params, out *Result) {
	out.Events += 2 * len(visitors)
	if len(visitors) < 2 {
		return
	}
	events := make([]event, 0, 2*len(visitors))
	for i, v := range visitors {
		events = append(events,
			event{minute: v.Start, arrive: true, idx: int32(i)},
			event{minute: v.End, arrive: false, idx: int32(i)},
		)
	}
	// Departures sort before arrivals at the same minute so that touching
	// intervals ([a,b) then [b,c)) never interact.
	sort.Slice(events, func(i, j int) bool {
		if events[i].minute != events[j].minute {
			return events[i].minute < events[j].minute
		}
		if events[i].arrive != events[j].arrive {
			return !events[i].arrive
		}
		// Tie-break by visitor id for full determinism.
		return visitors[events[i].idx].Person < visitors[events[j].idx].Person
	})

	// occupancy[group] lists currently present visitor indices; the group
	// is the fragment-local sublocation, or the original sublocation when
	// the mixing model is active.
	groupOf := func(v *Visitor) int32 {
		if p.Mixing > 0 {
			return v.OrigSub
		}
		return v.Sub
	}
	occupancy := make(map[int32][]int32)
	// pending[person] is the best (earliest) infection found so far.
	var pending map[int32]Infection

	for _, e := range events {
		v := &visitors[e.idx]
		group := groupOf(v)
		if !e.arrive {
			occ := occupancy[group]
			for k, idx := range occ {
				if idx == e.idx {
					occ[k] = occ[len(occ)-1]
					occupancy[group] = occ[:len(occ)-1]
					break
				}
			}
			continue
		}
		meet := func(otherIdx int32, scale float64) {
			o := &visitors[otherIdx]
			out.Interactions++
			// Overlap starts now (arrival) and ends at the earlier depart.
			end := v.End
			if o.End < end {
				end = o.End
			}
			overlap := int(end) - int(e.minute)
			if overlap <= 0 {
				return
			}
			tryInfect(v, o, overlap, e.minute, scale, p, out, &pending)
			tryInfect(o, v, overlap, e.minute, scale, p, out, &pending)
		}
		if p.Mixing > 0 {
			for g, occ := range occupancy {
				scale := p.Mixing
				if g == group {
					scale = 1
				}
				for _, otherIdx := range occ {
					meet(otherIdx, scale)
				}
			}
		} else {
			for _, otherIdx := range occupancy[group] {
				meet(otherIdx, 1)
			}
		}
		occupancy[group] = append(occupancy[group], e.idx)
	}

	for _, inf := range pending {
		out.Infections = append(out.Infections, inf)
	}
	// Canonical order for downstream determinism.
	sort.Slice(out.Infections, func(i, j int) bool {
		a, b := out.Infections[i], out.Infections[j]
		if a.Person != b.Person {
			return a.Person < b.Person
		}
		if a.Minute != b.Minute {
			return a.Minute < b.Minute
		}
		return a.Infector < b.Infector
	})
}

// tryInfect runs one directed transmission trial from infectious src to
// susceptible dst, if their states allow it. scale multiplies the
// transmission probability (1 for same-sublocation contact, the mixing
// factor otherwise).
func tryInfect(src, dst *Visitor, overlapMin int, at int16, scale float64, p Params, out *Result, pending *map[int32]Infection) {
	if src.Infectivity <= 0 || dst.Susceptibility <= 0 || scale <= 0 {
		return
	}
	out.Trials++
	out.ContactMinutes += int64(overlapMin)
	out.SumReciprocal += 1 / float64(overlapMin)
	prob := scale * transmissionProb(p.Tau, src.Infectivity, dst.Susceptibility, overlapMin)
	// The draw is keyed by content only — day, original location id,
	// original sublocations, the pair, and the overlap start — never by
	// execution order, so outcomes survive any re-partitioning (and, in
	// mixing mode, survive retain-edges splitting with replication).
	var subKey uint64
	if p.Mixing > 0 {
		subKey = xrand.Hash(uint64(src.OrigSub), uint64(dst.OrigSub))
	} else {
		subKey = uint64(p.SubBase + dst.Sub)
	}
	u := xrand.KeyedFloat64(0x1fec7, p.Day, p.LocKey,
		subKey, uint64(src.Person), uint64(dst.Person), uint64(at))
	if u >= prob {
		return
	}
	inf := Infection{Person: dst.Person, Infector: src.Person, Minute: at}
	if *pending == nil {
		*pending = make(map[int32]Infection)
	}
	if old, ok := (*pending)[dst.Person]; ok {
		if old.Minute < inf.Minute || (old.Minute == inf.Minute && old.Infector <= inf.Infector) {
			return
		}
	}
	(*pending)[dst.Person] = inf
}

// transmissionProb mirrors disease.Model.TransmissionProb; duplicated here
// (a one-line formula) to keep des free of the disease package so the two
// substrates stay independently testable.
func transmissionProb(tau, inf, sus float64, durMin int) float64 {
	if durMin <= 0 || inf <= 0 || sus <= 0 {
		return 0
	}
	return 1 - math.Exp(-tau*inf*sus*float64(durMin))
}
