package des

import (
	"testing"

	"repro/internal/xrand"
)

// mixParams returns mixing-enabled params.
func mixParams(m float64) Params {
	return Params{Day: 5, LocKey: 99, Tau: 0.002, Mixing: m}
}

func TestMixingCrossSublocationTransmission(t *testing.T) {
	// Infectious in room 0, susceptible in room 1: never transmits without
	// mixing, can transmit with mixing ~1 and huge tau.
	visitors := []Visitor{
		{Person: 1, Sub: 0, OrigSub: 0, Start: 0, End: 1440, Infectivity: 1},
		{Person: 2, Sub: 1, OrigSub: 1, Start: 0, End: 1440, Susceptibility: 1},
	}
	var off Result
	Simulate(visitors, Params{Day: 5, LocKey: 99, Tau: 100}, &off)
	if len(off.Infections) != 0 {
		t.Fatal("cross-room transmission without mixing")
	}
	var on Result
	Simulate(visitors, Params{Day: 5, LocKey: 99, Tau: 100, Mixing: 1}, &on)
	if len(on.Infections) != 1 {
		t.Fatalf("mixing=1 with huge tau should transmit, got %d", len(on.Infections))
	}
}

func TestMixingScalesProbability(t *testing.T) {
	// Statistical check: cross-room attack rate under mixing m should be
	// roughly m times the same-room rate for small probabilities.
	sameRoom := 0
	crossRoom := 0
	n := 8000
	m := 0.3
	for i := 0; i < n; i++ {
		same := []Visitor{
			{Person: 1, Sub: 0, OrigSub: 0, Start: 0, End: 200, Infectivity: 1},
			{Person: 2, Sub: 0, OrigSub: 0, Start: 0, End: 200, Susceptibility: 1},
		}
		cross := []Visitor{
			{Person: 1, Sub: 0, OrigSub: 0, Start: 0, End: 200, Infectivity: 1},
			{Person: 2, Sub: 1, OrigSub: 1, Start: 0, End: 200, Susceptibility: 1},
		}
		p := Params{Day: uint64(i), LocKey: 7, Tau: 0.002, Mixing: m}
		var rs, rc Result
		Simulate(same, p, &rs)
		Simulate(cross, p, &rc)
		sameRoom += len(rs.Infections)
		crossRoom += len(rc.Infections)
	}
	ratio := float64(crossRoom) / float64(sameRoom)
	// p_same = 1-exp(-0.4) = 0.33, p_cross = 0.3*0.33 = 0.099: ratio ≈ 0.30.
	if ratio < 0.2 || ratio > 0.45 {
		t.Fatalf("cross/same transmission ratio %.2f, want ≈%.2f", ratio, m)
	}
}

// TestRetainEdgesReplicationInvariance is the core oracle of the Figure
// 6(b) future-work model: simulating a whole location with mixing equals
// simulating its fragments separately when each fragment receives the
// local susceptibles plus replicas of ALL infectious visitors.
func TestRetainEdgesReplicationInvariance(t *testing.T) {
	s := xrand.NewStream(17)
	for trial := 0; trial < 30; trial++ {
		// Original location: 4 sublocations, visitors spread over them.
		n := 6 + s.Intn(20)
		var all []Visitor
		for i := 0; i < n; i++ {
			start := int16(s.Intn(1000))
			v := Visitor{
				Person: int32(i),
				Sub:    int32(s.Intn(4)),
				Start:  start,
				End:    start + int16(30+s.Intn(400)),
			}
			v.OrigSub = v.Sub
			if s.Float64() < 0.3 {
				v.Infectivity = 1
			} else {
				v.Susceptibility = 1
			}
			all = append(all, v)
		}
		p := mixParams(0.35)
		var whole Result
		Simulate(all, p, &whole)

		// Split into 2 fragments: sublocs {0,1} and {2,3}. Susceptibles go
		// to their own fragment; infectious are replicated to both.
		var fragA, fragB []Visitor
		for _, v := range all {
			inA := v.OrigSub < 2
			if v.Infectivity > 0 {
				fragA = append(fragA, v)
				fragB = append(fragB, v)
				continue
			}
			if inA {
				fragA = append(fragA, v)
			} else {
				fragB = append(fragB, v)
			}
		}
		var ra, rb Result
		Simulate(fragA, p, &ra)
		Simulate(fragB, p, &rb)

		merged := map[Infection]bool{}
		for _, i := range append(append([]Infection(nil), ra.Infections...), rb.Infections...) {
			merged[i] = true
		}
		if len(merged) != len(whole.Infections) {
			t.Fatalf("trial %d: replication changed infection count: %d vs %d",
				trial, len(merged), len(whole.Infections))
		}
		for _, i := range whole.Infections {
			if !merged[i] {
				t.Fatalf("trial %d: infection %+v lost under replication", trial, i)
			}
		}
	}
}

func TestMixingZeroMatchesLegacyPath(t *testing.T) {
	// Mixing=0 must take the exact legacy path: same infections as before
	// the mixing feature existed (keys unchanged).
	visitors := []Visitor{
		{Person: 1, Sub: 0, Start: 0, End: 700, Infectivity: 1},
		{Person: 2, Sub: 0, Start: 60, End: 800, Susceptibility: 1},
		{Person: 3, Sub: 1, Start: 0, End: 700, Infectivity: 1},
		{Person: 4, Sub: 1, Start: 60, End: 800, Susceptibility: 1},
	}
	p := Params{Day: 9, LocKey: 42, Tau: 0.002}
	var a, b Result
	Simulate(visitors, p, &a)
	p.Mixing = 0
	Simulate(visitors, p, &b)
	if len(a.Infections) != len(b.Infections) {
		t.Fatal("mixing=0 changed outcomes")
	}
	for i := range a.Infections {
		if a.Infections[i] != b.Infections[i] {
			t.Fatal("mixing=0 changed infections")
		}
	}
}

func TestMixingOrderInvariance(t *testing.T) {
	base := []Visitor{
		{Person: 1, Sub: 0, OrigSub: 0, Start: 0, End: 400, Infectivity: 1},
		{Person: 2, Sub: 1, OrigSub: 1, Start: 100, End: 500, Susceptibility: 1},
		{Person: 3, Sub: 2, OrigSub: 2, Start: 50, End: 450, Susceptibility: 1},
		{Person: 4, Sub: 0, OrigSub: 0, Start: 10, End: 300, Susceptibility: 0.8},
		{Person: 5, Sub: 1, OrigSub: 1, Start: 200, End: 600, Infectivity: 0.7},
	}
	p := mixParams(0.4)
	var want Result
	Simulate(base, p, &want)
	s := xrand.NewStream(3)
	for trial := 0; trial < 15; trial++ {
		perm := s.Perm(len(base))
		shuffled := make([]Visitor, len(base))
		for i, j := range perm {
			shuffled[i] = base[j]
		}
		var got Result
		Simulate(shuffled, p, &got)
		if len(got.Infections) != len(want.Infections) {
			t.Fatal("mixing outcomes depend on visitor order")
		}
		for i := range got.Infections {
			if got.Infections[i] != want.Infections[i] {
				t.Fatal("mixing infections depend on visitor order")
			}
		}
	}
}
