package des

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// params returns Params with a high tau so trials almost surely succeed.
func hotParams() Params { return Params{Day: 1, LocKey: 7, Tau: 10} }

func TestNoVisitorsNoWork(t *testing.T) {
	var r Result
	Simulate(nil, hotParams(), &r)
	if r.Events != 0 || len(r.Infections) != 0 {
		t.Fatalf("empty input produced %+v", r)
	}
	Simulate([]Visitor{{Person: 1, Start: 0, End: 10, Infectivity: 1}}, hotParams(), &r)
	if r.Events != 2 || len(r.Infections) != 0 {
		t.Fatalf("single visitor produced %+v", r)
	}
}

func TestBasicTransmission(t *testing.T) {
	visitors := []Visitor{
		{Person: 1, Sub: 0, Start: 60, End: 600, Infectivity: 1},
		{Person: 2, Sub: 0, Start: 60, End: 600, Susceptibility: 1},
	}
	var r Result
	Simulate(visitors, hotParams(), &r)
	if len(r.Infections) != 1 {
		t.Fatalf("want 1 infection with huge tau, got %d", len(r.Infections))
	}
	inf := r.Infections[0]
	if inf.Person != 2 || inf.Infector != 1 {
		t.Fatalf("wrong direction: %+v", inf)
	}
	if inf.Minute != 60 {
		t.Fatalf("exposure minute = %d, want 60", inf.Minute)
	}
	if r.Events != 4 || r.Trials != 1 || r.Interactions != 1 {
		t.Fatalf("counters: %+v", r)
	}
}

func TestNoTransmissionAcrossSublocations(t *testing.T) {
	visitors := []Visitor{
		{Person: 1, Sub: 0, Start: 0, End: 1440, Infectivity: 1},
		{Person: 2, Sub: 1, Start: 0, End: 1440, Susceptibility: 1},
	}
	var r Result
	Simulate(visitors, hotParams(), &r)
	if len(r.Infections) != 0 || r.Interactions != 0 {
		t.Fatalf("different sublocations interacted: %+v", r)
	}
}

func TestNoTransmissionWithoutOverlap(t *testing.T) {
	visitors := []Visitor{
		{Person: 1, Sub: 0, Start: 0, End: 100, Infectivity: 1},
		{Person: 2, Sub: 0, Start: 100, End: 200, Susceptibility: 1},
	}
	var r Result
	Simulate(visitors, hotParams(), &r)
	if len(r.Infections) != 0 {
		t.Fatal("touching intervals should not transmit")
	}
}

func TestSusceptiblePairNoTrial(t *testing.T) {
	visitors := []Visitor{
		{Person: 1, Sub: 0, Start: 0, End: 100, Susceptibility: 1},
		{Person: 2, Sub: 0, Start: 0, End: 100, Susceptibility: 1},
	}
	var r Result
	Simulate(visitors, hotParams(), &r)
	if r.Trials != 0 || len(r.Infections) != 0 {
		t.Fatalf("sus-sus pair ran a trial: %+v", r)
	}
	if r.Interactions != 1 {
		t.Fatalf("interactions = %d, want 1 (co-presence is counted)", r.Interactions)
	}
}

func TestOrderInvariance(t *testing.T) {
	// The infection set must be identical no matter how visitors are
	// ordered — the core partition-invariance property.
	base := []Visitor{
		{Person: 1, Sub: 0, Start: 0, End: 400, Infectivity: 1},
		{Person: 2, Sub: 0, Start: 100, End: 500, Susceptibility: 1},
		{Person: 3, Sub: 0, Start: 50, End: 450, Susceptibility: 1},
		{Person: 4, Sub: 1, Start: 0, End: 400, Infectivity: 0.5},
		{Person: 5, Sub: 1, Start: 10, End: 300, Susceptibility: 0.8},
		{Person: 6, Sub: 0, Start: 200, End: 600, Infectivity: 0.7},
	}
	p := Params{Day: 3, LocKey: 11, Tau: 0.001}
	var want Result
	Simulate(base, p, &want)

	s := xrand.NewStream(5)
	for trial := 0; trial < 20; trial++ {
		perm := s.Perm(len(base))
		shuffled := make([]Visitor, len(base))
		for i, j := range perm {
			shuffled[i] = base[j]
		}
		var got Result
		Simulate(shuffled, p, &got)
		if len(got.Infections) != len(want.Infections) {
			t.Fatalf("permutation changed infection count: %d vs %d", len(got.Infections), len(want.Infections))
		}
		for i := range got.Infections {
			if got.Infections[i] != want.Infections[i] {
				t.Fatalf("permutation changed infections: %+v vs %+v", got.Infections[i], want.Infections[i])
			}
		}
		if got.Interactions != want.Interactions || got.Trials != want.Trials {
			t.Fatalf("permutation changed counters")
		}
	}
}

func TestEarliestInfectionWins(t *testing.T) {
	// Two infectious people overlap the same susceptible at different
	// times; with tau huge both trials succeed and the earlier one must be
	// kept.
	visitors := []Visitor{
		{Person: 9, Sub: 0, Start: 0, End: 1440, Susceptibility: 1},
		{Person: 2, Sub: 0, Start: 300, End: 400, Infectivity: 1},
		{Person: 1, Sub: 0, Start: 100, End: 200, Infectivity: 1},
	}
	var r Result
	Simulate(visitors, hotParams(), &r)
	if len(r.Infections) != 1 {
		t.Fatalf("want deduplicated single infection, got %d", len(r.Infections))
	}
	if r.Infections[0].Infector != 1 || r.Infections[0].Minute != 100 {
		t.Fatalf("earliest infection should win: %+v", r.Infections[0])
	}
}

func TestBidirectionalTrial(t *testing.T) {
	// A symptomatic-but-susceptible pairing in both directions: person 1
	// can infect 2 and person 2 can infect 1.
	visitors := []Visitor{
		{Person: 1, Sub: 0, Start: 0, End: 500, Infectivity: 1, Susceptibility: 0},
		{Person: 2, Sub: 0, Start: 0, End: 500, Infectivity: 1, Susceptibility: 0},
	}
	var r Result
	Simulate(visitors, hotParams(), &r)
	if r.Trials != 0 {
		t.Fatalf("two infectious non-susceptibles should not trial: %+v", r)
	}
	visitors[0].Susceptibility = 1
	visitors[1].Susceptibility = 1
	r.Reset()
	Simulate(visitors, hotParams(), &r)
	if r.Trials != 2 {
		t.Fatalf("want 2 directed trials, got %d", r.Trials)
	}
}

func TestProbabilityZeroTau(t *testing.T) {
	visitors := []Visitor{
		{Person: 1, Sub: 0, Start: 0, End: 1440, Infectivity: 1},
		{Person: 2, Sub: 0, Start: 0, End: 1440, Susceptibility: 1},
	}
	var r Result
	Simulate(visitors, Params{Day: 1, LocKey: 1, Tau: 0}, &r)
	if len(r.Infections) != 0 {
		t.Fatal("tau=0 must never transmit")
	}
}

func TestSplitLocKeyInvariance(t *testing.T) {
	// Simulating sublocations {0,1} of a location together must equal
	// simulating each sublocation in a separate fragment with the same
	// LocKey and the appropriate SubBase: the exact property splitLoc
	// relies on for correctness.
	all := []Visitor{
		{Person: 1, Sub: 0, Start: 0, End: 700, Infectivity: 1},
		{Person: 2, Sub: 0, Start: 60, End: 800, Susceptibility: 1},
		{Person: 3, Sub: 1, Start: 0, End: 700, Infectivity: 1},
		{Person: 4, Sub: 1, Start: 60, End: 800, Susceptibility: 1},
		{Person: 5, Sub: 1, Start: 0, End: 500, Susceptibility: 1},
	}
	p := Params{Day: 9, LocKey: 42, Tau: 0.002}
	var whole Result
	Simulate(all, p, &whole)

	var frag0, frag1 Result
	var sub0, sub1 []Visitor
	for _, v := range all {
		if v.Sub == 0 {
			sub0 = append(sub0, v)
		} else {
			v.Sub = 0 // fragment renumbers its rooms from zero
			sub1 = append(sub1, v)
		}
	}
	Simulate(sub0, Params{Day: 9, LocKey: 42, SubBase: 0, Tau: 0.002}, &frag0)
	Simulate(sub1, Params{Day: 9, LocKey: 42, SubBase: 1, Tau: 0.002}, &frag1)

	merged := append(append([]Infection(nil), frag0.Infections...), frag1.Infections...)
	if len(merged) != len(whole.Infections) {
		t.Fatalf("split changed infections: %d vs %d", len(merged), len(whole.Infections))
	}
	seen := make(map[Infection]bool)
	for _, i := range whole.Infections {
		seen[i] = true
	}
	for _, i := range merged {
		if !seen[i] {
			t.Fatalf("split produced different infection %+v", i)
		}
	}
}

func TestCountersProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := xrand.NewStream(seed)
		n := 2 + s.Intn(40)
		visitors := make([]Visitor, n)
		for i := range visitors {
			start := int16(s.Intn(1000))
			visitors[i] = Visitor{
				Person:         int32(i),
				Sub:            int32(s.Intn(3)),
				Start:          start,
				End:            start + int16(1+s.Intn(400)),
				Infectivity:    float64(s.Intn(2)),
				Susceptibility: float64(s.Intn(2)),
			}
		}
		var r Result
		Simulate(visitors, Params{Day: seed, LocKey: 3, Tau: 0.001}, &r)
		if r.Events != 2*n {
			return false
		}
		// Trials cannot exceed 2x interactions; contact minutes positive
		// iff trials happened.
		if r.Trials > 2*r.Interactions {
			return false
		}
		if (r.ContactMinutes > 0) != (r.Trials > 0) {
			return false
		}
		// No one is infected twice.
		seen := map[int32]bool{}
		for _, inf := range r.Infections {
			if seen[inf.Person] {
				return false
			}
			seen[inf.Person] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResultReset(t *testing.T) {
	var r Result
	Simulate([]Visitor{
		{Person: 1, Sub: 0, Start: 0, End: 100, Infectivity: 1},
		{Person: 2, Sub: 0, Start: 0, End: 100, Susceptibility: 1},
	}, hotParams(), &r)
	r.Reset()
	if r.Events != 0 || len(r.Infections) != 0 || r.Trials != 0 || r.SumReciprocal != 0 {
		t.Fatalf("reset incomplete: %+v", r)
	}
}

func BenchmarkSimulate100Visitors(b *testing.B) {
	s := xrand.NewStream(1)
	visitors := make([]Visitor, 100)
	for i := range visitors {
		start := int16(s.Intn(1200))
		visitors[i] = Visitor{
			Person:         int32(i),
			Sub:            int32(s.Intn(4)),
			Start:          start,
			End:            start + int16(30+s.Intn(200)),
			Infectivity:    float64(i % 7 / 6), // ~1/7 infectious
			Susceptibility: float64((i + 1) % 2),
		}
	}
	p := Params{Day: 1, LocKey: 1, Tau: 0.0005}
	b.ReportAllocs()
	var r Result
	for i := 0; i < b.N; i++ {
		r.Reset()
		Simulate(visitors, p, &r)
	}
}
