package episim

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/synthpop"
)

// SweepStoreStats is a size snapshot of one on-disk artifact store.
type SweepStoreStats = artifact.StoreStats

// NewSweepCacheDir builds a SweepCache whose memory LRU (bounded to
// maxBytes, 0 = unbounded) is backed by a content-addressed artifact
// store rooted at dir: populations under dir/populations, placements
// under dir/placements. Every placement any process builds is written
// through to disk, and every later process — a repeated CLI sweep, a
// restarted daemon — loads it back instead of re-partitioning, which is
// the single most expensive step of a run. Artifacts are checksummed
// and versioned; a corrupt, truncated or stale file reads as a cache
// miss and is rebuilt in place, never served and never fatal.
//
// An empty dir degrades to NewSweepCache (memory only).
func NewSweepCacheDir(maxBytes int64, dir string) (*SweepCache, error) {
	c := NewSweepCache(maxBytes)
	if dir == "" {
		return c, nil
	}
	popStore, err := artifact.NewStore(filepath.Join(dir, "populations"))
	if err != nil {
		return nil, fmt.Errorf("episim: cache dir: %w", err)
	}
	plStore, err := artifact.NewStore(filepath.Join(dir, "placements"))
	if err != nil {
		return nil, fmt.Errorf("episim: cache dir: %w", err)
	}
	ckptStore, err := artifact.NewStore(filepath.Join(dir, "checkpoints"))
	if err != nil {
		return nil, fmt.Errorf("episim: cache dir: %w", err)
	}
	c.pop.WithDisk(populationTier{popStore})
	c.pl.WithDisk(placementTier{plStore})
	c.ckpt.WithDisk(checkpointTier{ckptStore})
	c.popStore, c.plStore, c.ckptStore = popStore, plStore, ckptStore
	return c, nil
}

// StoreStats reports the disk stores' sizes; ok is false for a
// memory-only cache.
func (c *SweepCache) StoreStats() (pop, pl SweepStoreStats, ok bool) {
	if c.popStore == nil || c.plStore == nil {
		return SweepStoreStats{}, SweepStoreStats{}, false
	}
	return c.popStore.Stats(), c.plStore.Stats(), true
}

// CheckpointStoreStats reports the on-disk checkpoint store's size; ok
// is false for a memory-only cache.
func (c *SweepCache) CheckpointStoreStats() (ck SweepStoreStats, ok bool) {
	if c.ckptStore == nil {
		return SweepStoreStats{}, false
	}
	return c.ckptStore.Stats(), true
}

// ExpireCheckpoints removes on-disk checkpoints older than age — the
// TTL behind episimd's -checkpoint-ttl flag. Checkpoints are the
// largest artifacts the store holds and are only worth keeping while
// their sweep spec is being iterated on, so they get their own horizon
// instead of competing with hot placements under the byte-bound GC.
// No-op for a memory-only cache.
func (c *SweepCache) ExpireCheckpoints(age time.Duration) (files int, bytes int64, err error) {
	if c.ckptStore == nil {
		return 0, 0, nil
	}
	return c.ckptStore.ExpireOlderThan(age)
}

// GCPlacements prunes the on-disk placement store to at most maxBytes,
// removing least-recently-accessed artifacts first (reads refresh
// recency). Placements dominate a cache dir's growth, which is otherwise
// monotonic; pruned artifacts simply read as misses and are rebuilt and
// re-stored on next use. No-op for a memory-only cache or maxBytes <= 0.
func (c *SweepCache) GCPlacements(maxBytes int64) (files int, bytes int64, err error) {
	if c.plStore == nil {
		return 0, 0, nil
	}
	return c.plStore.GC(maxBytes)
}

// populationTier adapts the artifact store + codec to the ensemble
// cache's disk-tier interface for populations.
type populationTier struct{ store *artifact.Store }

func (t populationTier) Load(key string) (any, error) {
	payload, err := t.store.Get(artifact.KindPopulation, key)
	if err != nil {
		return nil, tierErr(err)
	}
	return artifact.DecodePopulation(payload)
}

func (t populationTier) Store(key string, v any) error {
	return t.store.Put(artifact.KindPopulation, key,
		artifact.EncodePopulation(v.(*synthpop.Population)))
}

// placementTier does the same for placements, converting between the
// public Placement and its serializable artifact form (field-for-field;
// the artifact package cannot import this one).
type placementTier struct{ store *artifact.Store }

func (t placementTier) Load(key string) (any, error) {
	payload, err := t.store.Get(artifact.KindPlacement, key)
	if err != nil {
		return nil, tierErr(err)
	}
	a, err := artifact.DecodePlacement(payload)
	if err != nil {
		return nil, err
	}
	return &Placement{
		Pop:          a.Pop,
		PersonRank:   a.PersonRank,
		LocationRank: a.LocationRank,
		Ranks:        a.Ranks,
		Label:        a.Label,
		SplitStats:   a.SplitStats,
		Quality:      a.Quality,
	}, nil
}

func (t placementTier) Store(key string, v any) error {
	pl := v.(*Placement)
	return t.store.Put(artifact.KindPlacement, key, artifact.EncodePlacement(&artifact.Placement{
		Pop:          pl.Pop,
		PersonRank:   pl.PersonRank,
		LocationRank: pl.LocationRank,
		Ranks:        pl.Ranks,
		Label:        pl.Label,
		SplitStats:   pl.SplitStats,
		Quality:      pl.Quality,
	}))
}

// checkpointTier does the same for fork-point checkpoints.
type checkpointTier struct{ store *artifact.Store }

func (t checkpointTier) Load(key string) (any, error) {
	payload, err := t.store.Get(artifact.KindCheckpoint, key)
	if err != nil {
		return nil, tierErr(err)
	}
	return artifact.DecodeCheckpoint(payload)
}

func (t checkpointTier) Store(key string, v any) error {
	return t.store.Put(artifact.KindCheckpoint, key,
		artifact.EncodeCheckpoint(v.(*core.Checkpoint)))
}

// tierErr translates store misses to the ensemble sentinel; everything
// else (corruption, IO) passes through to be counted as a disk error.
func tierErr(err error) error {
	if errors.Is(err, artifact.ErrNotFound) {
		return ensemble.ErrTierMiss
	}
	return err
}
