package episim

import (
	"math"

	"repro/internal/loadmodel"
	"repro/internal/machine"
)

// PerfOptions parameterizes the machine-model pricing of a placement: the
// substitute for running on 360K Blue Waters cores (see DESIGN.md). The
// compute constants are in Blue Waters seconds: the location cost comes
// from the paper's own published load model, so modeled times per day land
// in the same decade as Figure 13's y-axis.
type PerfOptions struct {
	// Machine is the hardware model.
	Machine machine.Config
	// Aggregation is the message-aggregation buffer size (0 = off).
	Aggregation int
	// Sync selects the phase synchronization protocol.
	Sync machine.SyncMode
	// PersonSecPerVisit is the person-phase cost per visit message
	// (health recalculation + message construction).
	PersonSecPerVisit float64
	// UpdateSecPerPerson is the state-update phase cost per person.
	UpdateSecPerPerson float64
	// LocModel maps a location's event count to location-phase seconds.
	LocModel loadmodel.Static
	// InfectFraction approximates infect messages per visit message
	// (epidemic-dependent; only matters for the reverse-direction traffic).
	InfectFraction float64
	// VisitMsgBytes is the wire size of one visit message.
	VisitMsgBytes int
	// Mapping places ranks on torus nodes: contiguous (topology-aware:
	// recursive-bisection ranks communicate mostly with near ranks) or
	// scattered (topology-oblivious, priced at the torus mean hop
	// distance). Only matters when the machine has a torus geometry.
	Mapping RankMapping
}

// RankMapping selects the rank→node placement policy for torus pricing.
type RankMapping uint8

// Rank mapping policies.
const (
	// MapContiguous packs consecutive ranks onto consecutive torus nodes.
	MapContiguous RankMapping = iota
	// MapScattered models a topology-oblivious placement: every inter-node
	// message pays the torus-average hop distance.
	MapScattered
)

// DefaultPerfOptions returns Blue Waters-flavored defaults: the paper's
// published location load model, microsecond-class person costs, and the
// aggregation/SMP/CD settings of the optimized implementation.
func DefaultPerfOptions() PerfOptions {
	return PerfOptions{
		Machine:            machine.BlueWatersXE6(),
		Aggregation:        64,
		Sync:               machine.CompletionDetection,
		PersonSecPerVisit:  2.0e-6,
		UpdateSecPerPerson: 1.5e-7,
		LocModel:           loadmodel.Paper(),
		InfectFraction:     0.02,
		VisitMsgBytes:      28,
	}
}

// NoOptPerfOptions returns the "RR no-opt" configuration of Figure 12: no
// aggregation, no SMP communication thread, quiescence detection, and the
// unoptimized software overhead factor.
func NoOptPerfOptions() PerfOptions {
	o := DefaultPerfOptions()
	o.Aggregation = 0
	o.Sync = machine.QuiescenceDetection
	o.Machine.SMPEnabled = false
	o.Machine.SoftwareOverheadFactor = 1.8
	return o
}

// ModelSweepSeconds prices one whole sweep-cell simulation in modeled
// machine seconds: the placement's per-day cost under the machine model,
// times the cell's simulated-day count. The ensemble executor uses it as
// the cost oracle for longest-processing-time dispatch: cells are fed to
// the worker pool most-expensive-first, which cuts makespan on wide
// grids whose cells vary wildly in size.
func ModelSweepSeconds(pl *Placement, days int, opt PerfOptions) float64 {
	if days < 1 {
		days = 1
	}
	return ModelDayTime(pl, opt).Total * float64(days)
}

// ModelDayTime prices one simulated day of the placement on the machine
// model: per-rank compute from the workload models over the actual
// per-object visit counts, plus the exact cross-rank message matrix implied
// by the placement (aggregated per source–destination pair, classified
// intra- vs inter-node by the machine's SMP geometry).
func ModelDayTime(pl *Placement, opt PerfOptions) machine.DayCost {
	K := pl.Ranks
	pop := pl.Pop
	pesPerNode := opt.Machine.CoresPerNode
	if opt.Machine.SMPEnabled {
		pesPerNode -= opt.Machine.ProcsPerNode
	}
	if pesPerNode < 1 {
		pesPerNode = 1
	}
	nodeOf := func(rank int32) int32 { return rank / int32(pesPerNode) }

	person := make([]machine.RankPhase, K)
	location := make([]machine.RankPhase, K)
	update := make([]machine.RankPhase, K)

	// Compute terms.
	visitCounts := pop.VisitCountsPerLocation()
	for l, r := range pl.LocationRank {
		location[r].Compute += opt.LocModel.Load(float64(2 * visitCounts[l]))
	}
	for p := int32(0); p < int32(pop.NumPersons()); p++ {
		r := pl.PersonRank[p]
		nVisits := len(pop.PersonVisits(p))
		person[r].Compute += float64(nVisits) * opt.PersonSecPerVisit
		update[r].Compute += opt.UpdateSecPerPerson
	}

	// Message matrix: visits crossing ranks, accumulated per (src,dst).
	pairs := make(map[uint64]int64)
	for _, v := range pop.Visits {
		src := pl.PersonRank[v.Person]
		dst := pl.LocationRank[v.Loc]
		if src == dst {
			continue
		}
		pairs[uint64(src)<<32|uint64(uint32(dst))]++
	}
	torus := opt.Machine.TorusGeometry
	hopPricing := torus.Nodes() > 1 && opt.Machine.PerHopLatency > 0
	meanHops := 0.0
	if hopPricing {
		meanHops = torus.MeanHops()
	}
	extraHops := func(src, dst int32) float64 {
		if !hopPricing {
			return 0
		}
		if opt.Mapping == MapScattered {
			return meanHops - 1 // beyond the one-hop base
		}
		h := float64(torus.HopDistance(int(nodeOf(src)), int(nodeOf(dst)))) - 1
		if h < 0 {
			h = 0
		}
		return h
	}
	for key, count := range pairs {
		src := int32(key >> 32)
		dst := int32(uint32(key))
		wire := count
		if opt.Aggregation > 1 {
			wire = (count + int64(opt.Aggregation) - 1) / int64(opt.Aggregation)
		}
		inter := nodeOf(src) != nodeOf(dst)
		// Person phase: visit messages person-rank → location-rank.
		if inter {
			person[src].WireOutInter += wire
			person[dst].WireInInter += wire
			person[src].BytesOut += count * int64(opt.VisitMsgBytes)
			person[src].ExtraLatency += float64(wire) * opt.Machine.PerHopLatency * extraHops(src, dst)
		} else {
			person[src].WireOutIntra += wire
			person[dst].WireInIntra += wire
		}
		// Location phase: infect messages flow the reverse direction,
		// sparse and unaggregated.
		infect := int64(math.Ceil(float64(count) * opt.InfectFraction))
		if inter {
			location[dst].WireOutInter += infect
			location[src].WireInInter += infect
			location[dst].BytesOut += infect * 16
		} else {
			location[dst].WireOutIntra += infect
			location[src].WireInIntra += infect
		}
	}

	return opt.Machine.DayTime(person, location, update, opt.Sync)
}
