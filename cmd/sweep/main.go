// Command sweep runs a scenario-sweep ensemble from a declarative JSON
// spec: grids over populations, data distributions, disease models and
// intervention scenarios, N seeded replicates per cell, executed on a
// bounded worker pool with each unique (population, placement) pair
// built exactly once.
//
// Usage:
//
//	sweep -example > sweep.json           # print a starter spec
//	sweep -spec sweep.json -out results.json
//	sweep -spec sweep.json -summary summary.csv -curves curves.csv
//	sweep -spec sweep.json -workers 16 -out -
//	sweep -spec sweep.json -cache-dir .episim-cache -warm   # pre-build placements
//	sweep -spec sweep.json -cache-dir .episim-cache         # zero placement builds
//	sweep -server http://localhost:8321 -trace sw-000001    # where the wall clock went
//
// -trace fetches a submitted sweep's span timeline from an episimd (or
// episim-gw) instance and prints a per-stage summary: queue wait,
// placement builds, per-replicate simulation, aggregation, result
// persist — with each stage's share of the job's wall clock.
//
// With -cache-dir, every placement built is persisted as a checksummed,
// content-addressed artifact; repeated runs of the same spec (any
// process — including episimd pointed at the same directory) load the
// artifacts instead of re-partitioning and emit byte-identical output.
//
// Exactly one simulation grid is read from -spec; -out/-summary/-curves
// select the emitters ("-" means stdout). Progress goes to stderr.
//
// Ctrl-C cancels the sweep promptly (in-flight replicates finish, no new
// ones start) and exits 130. When some cells fail, sweep still emits the
// partial aggregates (failed cells carry an "error" field), prints a
// per-cell error summary to stderr, and exits 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	episim "repro"
	"repro/client"
	"repro/internal/obs"
)

func main() {
	var (
		specPath = flag.String("spec", "", "sweep spec JSON file (\"-\" = stdin)")
		example  = flag.Bool("example", false, "print an example spec and exit")
		workers  = flag.Int("workers", 0, "worker pool size (0 = spec value or GOMAXPROCS)")
		outJSON  = flag.String("out", "-", "write full aggregate JSON here (\"-\" = stdout, empty = off)")
		summary  = flag.String("summary", "", "write per-cell summary CSV here")
		curves   = flag.String("curves", "", "write per-day mean/quantile curves CSV here")
		cacheDir = flag.String("cache-dir", "", "persistent placement cache directory: placements built by any earlier run are loaded instead of rebuilt")
		warm     = flag.Bool("warm", false, "only build and persist the spec's placements into -cache-dir (no simulation)")
		cacheMax = flag.Int64("cache-max-bytes", 0, "after the run, prune -cache-dir's placement store to this size, least-recently-used first (0 = no pruning)")
		server   = flag.String("server", "", "episimd or episim-gw base URL, e.g. http://localhost:8321 (used by -trace)")
		traceJob = flag.String("trace", "", "fetch this job id's span timeline from -server, print a per-stage summary, and exit")
		kernel   = flag.String("kernel", "", "override the spec's simulation kernel: dense, auto or event")
		forkDay  = flag.Int("fork-day", 0, "override the spec's fork day: interventions branch from a shared checkpoint at this day (requires an \"interventions\" axis in the spec)")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	if *example {
		if err := exampleSpec().Encode(os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	if *traceJob != "" {
		if *server == "" {
			fail(fmt.Errorf("-trace requires -server"))
		}
		if err := printTrace(*server, *traceJob); err != nil {
			fail(err)
		}
		return
	}
	if *specPath == "" {
		fail(fmt.Errorf("missing -spec (try -example for a template)"))
	}

	var in io.Reader = os.Stdin
	if *specPath != "-" {
		f, err := os.Open(*specPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	spec, err := episim.ParseSweepSpec(in)
	if err != nil {
		fail(err)
	}
	if *workers > 0 {
		spec.Workers = *workers
	}
	if *kernel != "" {
		spec.Kernel = *kernel
	}
	if *forkDay > 0 {
		spec.ForkDay = *forkDay
		// Re-validate: the flag can push the fork past a branch's first
		// trigger day, which must be refused here, not mid-run.
		if err := spec.Validate(); err != nil {
			fail(err)
		}
	}

	var cache *episim.SweepCache
	if *cacheDir != "" {
		cache, err = episim.NewSweepCacheDir(0, *cacheDir)
		if err != nil {
			fail(err)
		}
	}
	// gcStore bounds the cache dir on the way out (both the warm-only
	// and full-run paths), so repeated sweeps against one directory
	// cannot grow it without limit.
	gcStore := func() {
		if cache == nil || *cacheMax <= 0 {
			return
		}
		files, bytes, err := cache.GCPlacements(*cacheMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep: cache GC:", err)
			return
		}
		if files > 0 {
			fmt.Fprintf(os.Stderr, "sweep: cache GC pruned %d placement artifacts (%d bytes)\n", files, bytes)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *warm {
		// Pre-warm only: build every unique placement into the cache dir
		// and stop — CI and operators run this once so every later
		// `sweep -cache-dir` (or episimd with the same dir) builds nothing.
		if cache == nil {
			fail(fmt.Errorf("-warm requires -cache-dir"))
		}
		start := time.Now()
		w, err := episim.WarmSweep(ctx, spec, &episim.SweepOptions{Cache: cache})
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "sweep: canceled")
			os.Exit(130)
		}
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "sweep: warmed %d populations + %d placements in %v (%d built, %d already cached)\n",
			w.Populations, w.Placements, time.Since(start).Round(time.Millisecond),
			w.Built(), w.Placements-w.Built())
		gcStore()
		return
	}

	cells := spec.Cells()
	fmt.Fprintf(os.Stderr, "sweep: %d cells × %d replicates = %d simulations\n",
		len(cells), spec.Replicates, len(cells)*spec.Replicates)

	start := time.Now()
	res, err := episim.RunSweepContext(ctx, spec, &episim.SweepOptions{Cache: cache})
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "sweep: canceled")
		os.Exit(130)
	}
	exitCode := 0
	if err != nil {
		if res == nil {
			fail(err)
		}
		// Partial result: some cells failed. Summarize them, emit what
		// completed, and flag the run with a non-zero exit.
		exitCode = 1
		fmt.Fprintln(os.Stderr, "sweep: FAILED cells:")
		for _, c := range res.Cells {
			if c.Error != "" {
				fmt.Fprintf(os.Stderr, "sweep:   cell %d (%s): %s\n", c.Index, c.Label, c.Error)
			}
		}
	}
	elapsed := time.Since(start)
	builds := 0
	for _, n := range res.PlacementBuilds {
		builds += n
	}
	line := fmt.Sprintf("sweep: %d simulations in %v (%d placements built",
		res.Simulations, elapsed.Round(time.Millisecond), builds)
	if cache != nil {
		line += fmt.Sprintf(", %d loaded from cache dir", cache.PlacementStats().DiskHits)
	}
	fmt.Fprintln(os.Stderr, line+")")
	if spec.ForkDay > 0 {
		ckBuilds := 0
		for _, n := range res.CheckpointBuilds {
			ckBuilds += n
		}
		fmt.Fprintf(os.Stderr, "sweep: fork day %d: %d checkpoints built, %d simulated days (vs %d from scratch)\n",
			spec.ForkDay, ckBuilds, res.SimulatedDays, int64(res.Simulations)*int64(spec.Days))
	}

	emit := func(path string, write func(io.Writer) error) {
		if path == "" {
			return
		}
		w := io.Writer(os.Stdout)
		if path != "-" {
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			defer func() {
				if err := f.Close(); err != nil {
					fail(err)
				}
			}()
			w = f
		}
		if err := write(w); err != nil {
			fail(err)
		}
		if path != "-" {
			fmt.Fprintf(os.Stderr, "sweep: wrote %s\n", path)
		}
	}
	emit(*outJSON, res.WriteJSON)
	emit(*summary, res.WriteSummaryCSV)
	emit(*curves, res.WriteCurvesCSV)
	gcStore()
	if exitCode != 0 {
		fmt.Fprintln(os.Stderr, "sweep: completed with failed cells (partial aggregates emitted)")
		os.Exit(exitCode)
	}
}

// printTrace fetches a sweep's span timeline and prints a per-stage
// rollup: thousands of per-replicate sim spans compress into one line
// per stage, with each stage's share of the job's wall clock and the
// overall fraction of wall time the recorded spans cover.
func printTrace(baseURL, id string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tr, err := client.New(baseURL).Trace(ctx, id)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s  job %s  state %s  wall %.3fs\n", tr.TraceID, tr.ID, tr.State, tr.WallSeconds)
	// One shared rollup path (obs.RollupStages) serves this CLI and the
	// bench harness's component breakdowns, so the two never disagree on
	// what a stage's total means.
	agg := obs.RollupStages(tr.Spans)
	for _, n := range obs.StageOrder(tr.Spans) {
		r := agg[n]
		pct := 0.0
		if tr.WallSeconds > 0 {
			pct = 100 * r.Seconds / tr.WallSeconds
		}
		fmt.Printf("  %-18s ×%-6d %10.3fs  %5.1f%% of wall\n", n, r.Count, r.Seconds, pct)
	}
	if tr.SpansDropped > 0 {
		fmt.Printf("  (%d spans dropped past the per-job cap; totals above are partial)\n", tr.SpansDropped)
	}
	fmt.Printf("  span coverage: %.1f%% of wall clock\n", 100*spanCoverage(tr))
	return nil
}

// spanCoverage is the fraction of the job's wall clock inside the union
// of its recorded span intervals (stages overlap — sim spans run under
// the run span — so intervals merge before summing).
func spanCoverage(tr client.TraceReply) float64 {
	if tr.WallSeconds <= 0 {
		return 0
	}
	iv := make([][2]time.Time, 0, len(tr.Spans))
	for _, sp := range tr.Spans {
		if sp.End.After(sp.Start) {
			iv = append(iv, [2]time.Time{sp.Start, sp.End})
		}
	}
	if len(iv) == 0 {
		return 0
	}
	sort.Slice(iv, func(a, b int) bool { return iv[a][0].Before(iv[b][0]) })
	var covered time.Duration
	curS, curE := iv[0][0], iv[0][1]
	for _, p := range iv[1:] {
		if p[0].After(curE) {
			covered += curE.Sub(curS)
			curS, curE = p[0], p[1]
			continue
		}
		if p[1].After(curE) {
			curE = p[1]
		}
	}
	covered += curE.Sub(curS)
	return covered.Seconds() / tr.WallSeconds
}

// exampleSpec is the template -example prints: a small but complete
// strategy × scenario sweep over a Table I state.
func exampleSpec() *episim.SweepSpec {
	spec := &episim.SweepSpec{
		Populations: []episim.SweepPopulation{{State: "WY", Scale: 200}},
		Placements: []episim.SweepPlacement{
			{Strategy: "RR", Ranks: 16},
			{Strategy: "GP", SplitLoc: true, Ranks: 16},
		},
		Scenarios: []episim.SweepScenario{
			{Name: "baseline"},
			{Name: "school-closure",
				Text: "when prevalence(symptomatic) > 0.005 and day >= 3 { close school for 14 }"},
		},
		Replicates:        16,
		Days:              120,
		Seed:              42,
		InitialInfections: 10,
		AggBufferSize:     64,
	}
	spec.Normalize()
	return spec
}
