// Command episimd is the streaming sweep service: a long-running daemon
// that accepts declarative SweepSpec submissions over HTTP, executes
// them on a shared bounded worker pool with a process-lifetime placement
// cache, and streams per-cell aggregates (SSE or NDJSON) the moment each
// cell finalizes.
//
// Usage:
//
//	episimd -addr :8321 -workers 16 -max-active 4 -cache-mb 2048
//
// Then, from any HTTP client:
//
//	sweep -example | curl -s -d @- localhost:8321/v1/sweeps
//	curl -N localhost:8321/v1/sweeps/sw-000001/events
//	curl -s localhost:8321/v1/stats
//
// SIGINT/SIGTERM drain gracefully: running sweeps are canceled, open
// event streams receive their terminal event, and the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8321", "listen address")
		workers   = flag.Int("workers", 0, "shared worker-slot pool across all sweeps (0 = GOMAXPROCS)")
		maxActive = flag.Int("max-active", 2, "sweeps executing concurrently; the rest queue")
		cacheMB   = flag.Int64("cache-mb", 4096, "LRU bound on the shared population+placement cache, MiB (0 = unbounded)")
	)
	flag.Parse()

	srv := server.New(server.Config{
		Workers:    *workers,
		MaxActive:  *maxActive,
		CacheBytes: *cacheMB << 20,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "episimd: listening on %s (workers=%d max-active=%d cache=%dMiB)\n",
		*addr, *workers, *maxActive, *cacheMB)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "episimd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "episimd: shutting down")
		srv.Close() // cancel running sweeps, flush terminal events
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "episimd: shutdown:", err)
			os.Exit(1)
		}
	}
}
