// Command episimd is the streaming sweep service: a long-running daemon
// that accepts declarative SweepSpec submissions over HTTP, executes
// them on a shared bounded worker pool with a process-lifetime placement
// cache, and streams per-cell aggregates (SSE or NDJSON) the moment each
// cell finalizes.
//
// Usage:
//
//	episimd -addr :8321 -workers 16 -max-active 4 -cache-mb 2048
//	episimd -cache-dir /var/lib/episimd -retain 512 -result-ttl 72h
//
// With -cache-dir the daemon is durable: placements built by any
// earlier process (or by `sweep -warm` against the same directory) are
// loaded instead of re-partitioned, and finished sweeps spill to disk —
// GET /v1/sweeps/{id}/result keeps working across restarts and after
// the memory index evicts old jobs per -retain / -result-ttl.
//
// Then, from any HTTP client:
//
//	sweep -example | curl -s -d @- localhost:8321/v1/sweeps
//	curl -N localhost:8321/v1/sweeps/sw-000001/events
//	curl -s localhost:8321/v1/stats
//
// Observability: every submission carries a trace id (X-Episim-Trace-Id,
// minted when absent) and GET /v1/sweeps/{id}/trace returns its span
// timeline; /metrics adds latency histograms. -log-format json switches
// to trace-correlated JSON log lines, and -pprof-addr serves
// net/http/pprof on a separate (private!) listener.
//
// SIGINT/SIGTERM drain gracefully: running sweeps are canceled, open
// event streams receive their terminal event, and the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/client"
	"repro/internal/obs"
	"repro/internal/server"
)

// defaultName identifies this instance when -name is not given: the
// hostname when it passes the instance-name rules, else a safe constant
// — a host that happens to be called "build-sw-east" (or "b2") must
// still boot with default flags; only an EXPLICIT bad -name is an
// error.
func defaultName() string {
	if h, err := os.Hostname(); err == nil && client.ValidateInstanceName(h) == nil {
		return h
	}
	return "episimd"
}

// validateName applies the shared instance-name rules (see
// client.ValidateInstanceName — the gateway enforces the same ones when
// it discovers names, so a daemon that boots is a daemon that routes).
func validateName(name string) error {
	if err := client.ValidateInstanceName(name); err != nil {
		return fmt.Errorf("episimd: -name: %w", err)
	}
	return nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8321", "listen address")
		workers   = flag.Int("workers", 0, "shared worker-slot pool across all sweeps (0 = GOMAXPROCS)")
		maxActive = flag.Int("max-active", 2, "sweeps executing concurrently; the rest queue")
		cacheMB   = flag.Int64("cache-mb", 4096, "LRU bound on the shared population+placement cache, MiB (0 = unbounded)")
		cacheDir  = flag.String("cache-dir", "", "persistent artifact store: placements survive restarts, finished sweeps spill to disk (empty = memory only)")
		retain    = flag.Int("retain", 1024, "finished sweeps kept in the memory index; older ones evict (to disk with -cache-dir) (0 = unbounded)")
		resultTTL = flag.Duration("result-ttl", 0, "evict finished sweeps from the memory index — and, with -cache-dir, expire their disk records — after this age, e.g. 24h (0 = never)")
		ckptTTL   = flag.Duration("checkpoint-ttl", 0, "expire on-disk fork-point checkpoints not read within this age, e.g. 6h (0 = never); requires -cache-dir")
		storeMax  = flag.Int64("store-max-bytes", 0, "bound the on-disk placement store: a background LRU sweep prunes least-recently-used artifacts past this size (0 = unbounded)")
		name      = flag.String("name", defaultName(), "instance name reported by /healthz; a fronting episim-gw adopts it as this backend's routing identity and embeds it in job ids")
		logFormat = flag.String("log-format", "text", "log line format: text or json (json lines carry trace ids for correlation)")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof and /debug/runtime on this address (empty = off; never expose publicly)")

		historyInterval = flag.Duration("history-interval", 5*time.Second, "metrics-history snapshot cadence feeding /v1/metrics/history and the SLO engine")
		sloQueueWait    = flag.Duration("slo-queue-wait", 30*time.Second, "queue-wait latency budget for the queue-wait SLO")
		burnThreshold   = flag.Float64("burn-threshold", 14, "short-window error-budget burn rate that triggers a profile capture (14 ≈ exhausting a 30-day budget in ~2 days)")
		profileDepth    = flag.Int("profile-queue-depth", 0, "queue depth that triggers a profile capture (0 = burn-rate trigger only)")
		profileCooldown = flag.Duration("profile-cooldown", 10*time.Minute, "minimum gap between watchdog profile captures")
	)
	flag.Parse()

	if err := validateName(*name); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "episimd: -log-level:", err)
		os.Exit(2)
	}
	log := obs.NewLogger(os.Stderr, *logFormat, level, "episimd")

	srv, err := server.New(server.Config{
		Workers:       *workers,
		MaxActive:     *maxActive,
		CacheBytes:    *cacheMB << 20,
		CacheDir:      *cacheDir,
		Retain:        *retain,
		ResultTTL:     *resultTTL,
		CheckpointTTL: *ckptTTL,
		StoreMaxBytes: *storeMax,
		Name:          *name,
		Logger:        log,

		HistoryInterval:     *historyInterval,
		QueueWaitSLOSeconds: sloQueueWait.Seconds(),
		BurnThreshold:       *burnThreshold,
		ProfileQueueDepth:   *profileDepth,
		ProfileCooldown:     *profileCooldown,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "episimd:", err)
		os.Exit(1)
	}
	debugSrv, err := obs.ServeDebug(*pprofAddr, log)
	if err != nil {
		fmt.Fprintln(os.Stderr, "episimd: -pprof-addr:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	persist := "memory-only"
	if *cacheDir != "" {
		persist = "cache-dir=" + *cacheDir
	}
	fmt.Fprintf(os.Stderr, "episimd: listening on %s (workers=%d max-active=%d cache=%dMiB %s retain=%d)\n",
		*addr, *workers, *maxActive, *cacheMB, persist, *retain)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "episimd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "episimd: shutting down")
		srv.Close() // cancel running sweeps, flush terminal events
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if debugSrv != nil {
			_ = debugSrv.Shutdown(shutdownCtx)
		}
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "episimd: shutdown:", err)
			os.Exit(1)
		}
	}
}
