// Command episim-top is a terminal ops console for an episim fleet: it
// polls a gateway's (or a single daemon's) /v1/stats, /v1/slo and
// /v1/usage and renders a live view — fleet load, per-backend health and
// queue depths, SLO error-budget burn rates, and the top clients by
// consumed simulation time.
//
// Usage:
//
//	episim-top -addr http://localhost:8320
//	episim-top -addr http://localhost:8321 -once   # one frame, no ANSI (CI, scripts)
//
// Pointed at a gateway it shows the whole fleet; pointed at one episimd
// it shows that instance (the backend table is simply empty). -once
// prints a single frame and exits, which is what the CI smoke test runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/client"
	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8320", "gateway or daemon base URL")
		interval = flag.Duration("interval", 2*time.Second, "refresh cadence")
		once     = flag.Bool("once", false, "render one frame without ANSI control codes and exit")
		topN     = flag.Int("top", 8, "usage rows shown (top clients by sim-seconds)")
	)
	flag.Parse()
	base := strings.TrimRight(*addr, "/")
	httpc := &http.Client{Timeout: 10 * time.Second}

	for {
		frame, err := render(httpc, base, *topN)
		if *once {
			if err != nil {
				fmt.Fprintln(os.Stderr, "episim-top:", err)
				os.Exit(1)
			}
			fmt.Print(frame)
			return
		}
		// Clear + home between frames; errors render in-place so a
		// restarting gateway shows as a blinking error, not an exit.
		fmt.Print("\x1b[2J\x1b[H")
		if err != nil {
			fmt.Printf("episim-top: %v (retrying every %v)\n", err, *interval)
		} else {
			fmt.Print(frame)
		}
		time.Sleep(*interval)
	}
}

// getJSON fetches one endpoint into out. /v1/slo and /v1/usage only
// exist on current builds, so callers treat their errors as soft.
func getJSON(httpc *http.Client, url string, out any) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// render assembles one full frame. Only /v1/stats is load-bearing: a
// target without the SLO plane still renders load and backends.
func render(httpc *http.Client, base string, topN int) (string, error) {
	var st cluster.StatsReply
	if err := getJSON(httpc, base+"/v1/stats", &st); err != nil {
		return "", err
	}
	var slo client.SLOReply
	sloErr := getJSON(httpc, base+"/v1/slo", &slo)
	var usage client.UsageReply
	usageErr := getJSON(httpc, base+"/v1/usage", &usage)

	var b strings.Builder
	now := time.Now().Format("15:04:05")

	// Header: where we're looking and the fleet-level load gauges.
	fmt.Fprintf(&b, "episim-top  %s  %s\n", base, now)
	health := ""
	if st.Gateway.BackendsTotal > 0 {
		health = fmt.Sprintf("  backends %d/%d healthy", st.Gateway.BackendsHealthy, st.Gateway.BackendsTotal)
		if st.Gateway.FleetHealthy == 0 {
			health += "  [STALE: fleet unreachable, last-known stats]"
		}
	}
	p99 := math.NaN()
	if qh, ok := findHist(st.StatsReply, "episimd_queue_wait_seconds"); ok {
		p99 = qh.Quantile(0.99)
	}
	fmt.Fprintf(&b, "queue %d  active %d  done %d/%d  cells %d (%.0f/s)  q-wait p99 %s%s\n\n",
		st.QueueDepth, st.ActiveSweeps, st.SweepsDone, st.SweepsTotal,
		st.CellsStreamed, st.CellsPerSec, fmtSeconds(p99), health)

	// SLOs: objective, short/long-window burn, budget state.
	b.WriteString("SLO                    objective   burn(5m)   burn(1h)   errors\n")
	if sloErr != nil {
		fmt.Fprintf(&b, "  (unavailable: %v)\n", sloErr)
	}
	for _, s := range slo.SLOs {
		mark := ""
		if s.Stale {
			mark = "  STALE"
		}
		short, long := math.NaN(), math.NaN()
		var errRate float64
		if len(s.Windows) > 0 {
			short = s.Windows[0].BurnRate
			errRate = s.Windows[0].ErrorRate
		}
		if len(s.Windows) > 1 {
			long = s.Windows[1].BurnRate
		}
		fmt.Fprintf(&b, "%-22s %9.3f %10s %10s %8.1f%%%s\n",
			s.Name, s.Objective, fmtBurn(short), fmtBurn(long), errRate*100, mark)
	}
	b.WriteString("\n")

	// Backends (gateway targets only).
	if len(st.Backends) > 0 {
		b.WriteString("BACKEND          up  queue  routed   cells      err\n")
		for _, bs := range st.Backends {
			up := "ok"
			if !bs.Healthy {
				up = "DOWN"
			}
			cells := int64(0)
			if bs.Stats != nil {
				cells = bs.Stats.CellsStreamed
			}
			note := bs.StatsError
			if bs.StatsStale {
				age := ""
				if bs.StatsUpdated != nil {
					age = fmt.Sprintf(" (%s old)", time.Since(*bs.StatsUpdated).Round(time.Second))
				}
				note = "stale" + age
			}
			fmt.Fprintf(&b, "%-15s %3s %6d %7d %7d  %s\n",
				bs.Name, up, bs.QueueDepth, bs.Routed, cells, note)
		}
		b.WriteString("\n")
	}

	// Top clients by consumed simulation time.
	fmt.Fprintf(&b, "CLIENT                 submits    cells   sim-sec  cache-hit   streamed\n")
	if usageErr != nil {
		fmt.Fprintf(&b, "  (unavailable: %v)\n", usageErr)
	}
	rows := usage.Clients
	if len(rows) > topN {
		rows = rows[:topN]
	}
	for _, u := range rows {
		fmt.Fprintf(&b, "%-22s %7d %8d %9.1f %10d %10s\n",
			u.Client, u.Submissions, u.Cells, u.SimSeconds, u.CacheHits, fmtBytes(u.StreamedBytes))
	}
	if len(usage.Clients) > topN {
		fmt.Fprintf(&b, "  ... %d more clients\n", len(usage.Clients)-topN)
	}
	return b.String(), nil
}

func findHist(st client.StatsReply, name string) (obs.HistogramSnapshot, bool) {
	for _, h := range st.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return obs.HistogramSnapshot{}, false
}

// fmtBurn renders a burn rate compactly; "-" before the ring has two
// points (NaN) — burn 1.0 means spending budget exactly as fast as the
// objective allows.
func fmtBurn(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

func fmtSeconds(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3gs", v)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
