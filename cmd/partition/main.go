// Command partition distributes a population graph over ranks and reports
// the quality metrics of Section III-B: per-phase load balance, edge cut,
// maximum per-partition cut, and the S_ub speedup bound.
//
// Usage:
//
//	partition -state IA -scale 1000 -ranks 256 -strategy GP -splitloc
//	partition -in ca.pop.gz -ranks 1024 -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	episim "repro"
	"repro/internal/synthpop"
)

func main() {
	var (
		state    = flag.String("state", "IA", "preset to generate")
		scale    = flag.Int("scale", 1000, "scale divisor")
		in       = flag.String("in", "", "load population from file instead")
		ranks    = flag.Int("ranks", 64, "number of partitions")
		strategy = flag.String("strategy", "GP", "RR or GP")
		splitLoc = flag.Bool("splitloc", false, "apply splitLoc first")
		seed     = flag.Uint64("seed", 1, "seed")
		compare  = flag.Bool("compare", false, "report all four strategies")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}

	var pop *synthpop.Population
	var err error
	if *in != "" {
		pop, err = synthpop.Load(*in)
	} else {
		pop, err = synthpop.GenerateState(*state, *scale, *seed)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("population %q: %d persons, %d locations, %d visits; %d ranks\n",
		pop.Name, pop.NumPersons(), pop.NumLocations(), pop.NumVisits(), *ranks)

	var opts []episim.PlacementOptions
	if *compare {
		opts = []episim.PlacementOptions{
			{Strategy: episim.RR},
			{Strategy: episim.GP},
			{Strategy: episim.RR, SplitLoc: true},
			{Strategy: episim.GP, SplitLoc: true},
		}
	} else {
		var strat episim.Strategy
		switch strings.ToUpper(*strategy) {
		case "RR":
			strat = episim.RR
		case "GP":
			strat = episim.GP
		default:
			fail(fmt.Errorf("unknown strategy %q", *strategy))
		}
		opts = []episim.PlacementOptions{{Strategy: strat, SplitLoc: *splitLoc}}
	}

	fmt.Printf("%-14s %12s %12s %10s %10s %12s %12s\n",
		"strategy", "edge cut", "max cut", "bal(pers)", "bal(loc)", "Sub(pers)", "Sub(loc)")
	for _, o := range opts {
		o.Ranks = *ranks
		o.Seed = *seed
		o.EvaluateQuality = true
		pl, err := episim.BuildPlacement(pop, o)
		if err != nil {
			fail(err)
		}
		q := pl.Quality
		fmt.Printf("%-14s %12d %12d %10.2f %10.2f %12.0f %12.0f\n",
			pl.Label, q.EdgeCut, q.MaxPartCut, q.MaxOverAvg[0], q.MaxOverAvg[1],
			q.SpeedupUpperBound(0), q.SpeedupUpperBound(1))
	}
}
