// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig13 [-scale 1000] [-quick]
//	experiments -run all
//
// Each experiment prints the same rows/series the corresponding paper
// artifact reports; EXPERIMENTS.md records paper-vs-measured.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		list          = flag.Bool("list", false, "list available experiments")
		run           = flag.String("run", "", "experiment to run (or \"all\")")
		scale         = flag.Int("scale", 1000, "population scale divisor for Table-I presets")
		analysisScale = flag.Int("analysis-scale", 300, "scale divisor for distribution/bound figures")
		seed          = flag.Uint64("seed", 20140519, "generation seed")
		quick         = flag.Bool("quick", false, "reduced state sets and sweeps")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-9s %s\n", e.Name, e.Desc)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run NAME (or -run all)")
		}
		return
	}

	opt := experiments.Options{
		Scale:         *scale,
		AnalysisScale: *analysisScale,
		Seed:          *seed,
		Quick:         *quick,
	}
	var toRun []experiments.Experiment
	if *run == "all" {
		toRun = experiments.All()
	} else {
		e, err := experiments.ByName(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		toRun = []experiments.Experiment{e}
	}
	for _, e := range toRun {
		start := time.Now()
		fmt.Printf("==== %s: %s ====\n", e.Name, e.Desc)
		if err := e.Run(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %v ----\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
}
