// Command episim-gw is the scale-out front door for a fleet of episimd
// instances: a stateless HTTP gateway that routes each sweep submission
// by its dominant placement content key (rendezvous hashing over the
// healthy backends), so repeat submissions of the same population and
// placement land on the instance whose placement cache is already warm.
// Status, results, cancels and event streams proxy transparently — job
// ids issued by the gateway embed the owning backend — and /v1/stats and
// /metrics aggregate the whole fleet.
//
// Usage:
//
//	episim-gw -addr :8320 -backends http://10.0.0.1:8321,http://10.0.0.2:8321
//
// Backends are probed via /healthz every -probe-interval; a backend
// failing -fail-after consecutive probes (or any submit) is ejected and
// submissions re-route to the next backend in preference order until it
// recovers. Keep the -backends list order stable across gateway
// restarts: a backend's identity (b0, b1, ...) is its position in the
// list and issued job ids embed it — append new backends at the end.
//
// Existing clients need no changes: point them at the gateway instead of
// a single daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	var (
		addr          = flag.String("addr", ":8320", "listen address")
		backends      = flag.String("backends", "", "comma-separated episimd base URLs (required; order is identity — keep it stable)")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "health-probe cadence")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "health-probe request timeout")
		failAfter     = flag.Int("fail-after", 2, "consecutive failed probes before a backend is ejected")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "episim-gw: -backends is required (comma-separated episimd URLs)")
		os.Exit(2)
	}

	gw, err := cluster.New(cluster.Config{
		Backends:      urls,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailAfter:     *failAfter,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "episim-gw:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: gw.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "episim-gw: listening on %s, fronting %d backends (probe every %v, eject after %d failures)\n",
		*addr, len(urls), *probeInterval, *failAfter)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "episim-gw:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "episim-gw: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "episim-gw: shutdown:", err)
		}
		gw.Close()
	}
}
