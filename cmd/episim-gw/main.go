// Command episim-gw is the scale-out front door for a fleet of episimd
// instances: a stateless HTTP gateway that routes each sweep submission
// by its dominant placement content key (rendezvous hashing over the
// healthy backends), so repeat submissions of the same population and
// placement land on the instance whose placement cache is already warm.
// Status, results, cancels and event streams proxy transparently — job
// ids issued by the gateway embed the owning backend's name — and
// /v1/stats and /metrics aggregate the whole fleet.
//
// Usage:
//
//	episim-gw -addr :8320 -backends http://10.0.0.1:8321,http://10.0.0.2:8321
//
// Backend identity comes from each daemon's own name (`episimd -name`,
// discovered via /healthz), not from its position in -backends: the list
// can be reordered, extended, or re-addressed across gateway restarts
// without breaking issued job ids or moving any key's cache-affine
// owner. A daemon that reports no name falls back to positional identity
// ("b0", "b1", ...) — only then does list order matter.
//
// Backends are probed via /healthz every -probe-interval; a backend
// failing -fail-after consecutive probes (or any submit) is ejected and
// submissions re-route to the next backend in preference order until it
// recovers. With -spill-queue-depth N, a submission also routes past a
// healthy owner whose queue depth exceeds N to the HRW runner-up —
// trading one cold placement build for tail latency — counted by the
// episim_gw_spilled_total metric.
//
// Admission control (off by default) throttles each client — keyed by
// the X-Episim-Client header, else the remote address — with a token
// bucket (-submit-rate, -submit-burst) and an in-flight sweep cap
// (-max-inflight-per-client), answering 429 + Retry-After, which the
// repro/client package honors automatically.
//
// Observability: trace ids (X-Episim-Trace-Id) pass through to the
// owning backend — or are minted at the edge — and
// GET /v1/sweeps/{id}/trace relays the owner's span timeline verbatim.
// /metrics adds fleet-merged latency histograms plus the gateway's own
// per-backend proxy round-trip histogram; -log-format json and
// -pprof-addr mirror episimd's flags.
//
// Existing clients need no changes: point them at the gateway instead of
// a single daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	var (
		addr          = flag.String("addr", ":8320", "listen address")
		backends      = flag.String("backends", "", "comma-separated episimd base URLs (required; identity comes from each daemon's -name, so order is free)")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "health-probe cadence")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "health-probe request timeout")
		failAfter     = flag.Int("fail-after", 2, "consecutive failed probes before a backend is ejected")
		spillDepth    = flag.Int("spill-queue-depth", 0, "spill a submission to the HRW runner-up when the owner's queue depth exceeds this (0 = pure content-key affinity)")
		maxInflight   = flag.Int("max-inflight-per-client", 0, "cap on one client's unfinished sweeps across the fleet (0 = unlimited)")
		submitRate    = flag.Float64("submit-rate", 0, "per-client sustained submission rate, sweeps/sec (0 = unlimited)")
		submitBurst   = flag.Int("submit-burst", 0, "per-client submission burst size (0 = max(1, 2×submit-rate))")
		logFormat     = flag.String("log-format", "text", "log line format: text or json (json lines carry trace ids for correlation)")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		pprofAddr     = flag.String("pprof-addr", "", "serve net/http/pprof and /debug/runtime on this address (empty = off; never expose publicly)")

		historyInterval = flag.Duration("history-interval", 5*time.Second, "fleet metrics-history snapshot cadence feeding /v1/metrics/history and the fleet SLO burn rates")
		sloQueueWait    = flag.Duration("slo-queue-wait", 30*time.Second, "queue-wait latency budget for the fleet queue-wait SLO (keep equal to the backends')")
	)
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "episim-gw: -backends is required (comma-separated episimd URLs)")
		os.Exit(2)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "episim-gw: -log-level:", err)
		os.Exit(2)
	}
	log := obs.NewLogger(os.Stderr, *logFormat, level, "episim-gw")

	gw, err := cluster.New(cluster.Config{
		Backends:             urls,
		ProbeInterval:        *probeInterval,
		ProbeTimeout:         *probeTimeout,
		FailAfter:            *failAfter,
		SpillQueueDepth:      *spillDepth,
		MaxInflightPerClient: *maxInflight,
		SubmitRate:           *submitRate,
		SubmitBurst:          *submitBurst,
		Logger:               log,
		HistoryInterval:      *historyInterval,
		QueueWaitSLOSeconds:  sloQueueWait.Seconds(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "episim-gw:", err)
		os.Exit(1)
	}
	debugSrv, err := obs.ServeDebug(*pprofAddr, log)
	if err != nil {
		fmt.Fprintln(os.Stderr, "episim-gw: -pprof-addr:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: gw.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	admission := "admission off"
	if *submitRate > 0 || *maxInflight > 0 {
		admission = fmt.Sprintf("admission rate=%g/s max-inflight=%d", *submitRate, *maxInflight)
	}
	fmt.Fprintf(os.Stderr, "episim-gw: listening on %s, fronting %d backends (probe every %v, eject after %d failures, spill depth %d, %s)\n",
		*addr, len(urls), *probeInterval, *failAfter, *spillDepth, admission)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "episim-gw:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "episim-gw: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if debugSrv != nil {
			_ = debugSrv.Shutdown(shutdownCtx)
		}
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "episim-gw: shutdown:", err)
		}
		gw.Close()
	}
}
