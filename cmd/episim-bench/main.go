// Command episim-bench runs the scaling-matrix bench harness and gates
// regressions between runs.
//
// Run mode executes a declarative matrix over population scale ×
// placement strategy × ranks × scenario count × cache state — every
// cell in-process through the real sweep engine, with a per-config
// timeout, wall-clock timing, peak-RSS sampling, allocator deltas and a
// span-derived component breakdown — and emits a schema-versioned
// BENCH_matrix.json:
//
//	episim-bench -out BENCH_matrix.json                  # default "matrix" preset
//	episim-bench -preset sweep -out BENCH_sweep_cells.json
//	episim-bench -spec matrix.json -cell-timeout 90s
//
// Compare mode diffs two reports cell by cell inside a noise band and
// exits non-zero on any regression (or silently-vanished cell), which
// is what lets CI gate a PR on measured numbers:
//
//	episim-bench -compare old.json new.json -noise 15%
//	episim-bench -compare old.json new.json -noise 10% -rss-noise 30%
//
// Kernel-gate mode checks a single report's dense-vs-auto kernel pairs
// (the "kernels" preset, or any matrix carrying kernel cells): auto
// must beat dense by -min-speedup at the lowest seeding and stay
// within -noise of dense at every other seeding:
//
//	episim-bench -preset kernels -out BENCH_kernels.json
//	episim-bench -kernel-gate BENCH_kernels.json -min-speedup 2 -noise 15%
//
// Wall clock always gates; peak RSS gates only when -rss-noise is set
// and both reports measured RSS from the same source (true /proc RSS is
// never compared against the Go-heap fallback). Run mode exits 1 when
// any cell errors or times out; compare mode exits 1 when the gate
// trips. Progress goes to stderr, artifacts to -out.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/benchmatrix"
)

func main() {
	var (
		preset     = flag.String("preset", "matrix", "built-in matrix (matrix | sweep | kernels); ignored with -spec")
		specPath   = flag.String("spec", "", "matrix spec JSON file (\"-\" = stdin)")
		outPath    = flag.String("out", "BENCH_matrix.json", "write the report here (\"-\" = stdout)")
		timeout    = flag.Duration("cell-timeout", 0, "override the per-cell timeout (0 = spec value)")
		sampleIval = flag.Duration("sample-interval", 0, "RSS sampling period (0 = 10ms)")
		example    = flag.Bool("example", false, "print the selected preset as an editable spec and exit")

		comparePath = flag.String("compare", "", "old report: with a NEW report as the positional argument, diff instead of run")
		noiseFlag   = flag.String("noise", "15%", "wall-clock noise band for -compare (\"15%\" or \"0.15\") and for -kernel-gate's everywhere-band")
		rssNoise    = flag.String("rss-noise", "0", "peak-RSS noise band for -compare (0 disables RSS gating)")

		kernelGate = flag.String("kernel-gate", "", "report file: gate its dense-vs-auto kernel pairs instead of running")
		minSpeedup = flag.Float64("min-speedup", 2.0, "required dense/auto speedup at the lowest seeding for -kernel-gate")
	)
	flag.Parse()

	if *comparePath != "" {
		os.Exit(runCompare(*comparePath, flag.Arg(0), *noiseFlag, *rssNoise))
	}
	if *kernelGate != "" {
		os.Exit(runKernelGate(*kernelGate, *noiseFlag, *minSpeedup))
	}

	spec, err := loadSpec(*specPath, *preset)
	if err != nil {
		fatal(err)
	}
	if *timeout > 0 {
		spec.CellTimeout = benchmatrix.Duration(*timeout)
	}
	if *example {
		if err := writeSpec(os.Stdout, spec); err != nil {
			fatal(err)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cells := len(spec.Cells())
	fmt.Fprintf(os.Stderr, "episim-bench: matrix %q, %d cells, per-cell timeout %s\n",
		spec.Name, cells, time.Duration(spec.CellTimeout))
	start := time.Now()
	rep, err := benchmatrix.Run(ctx, spec, &benchmatrix.RunnerOptions{
		SampleInterval: *sampleIval,
		Progress:       os.Stderr,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "episim-bench: interrupted")
			os.Exit(130)
		}
		fatal(err)
	}
	rep.TimestampUTC = time.Now().UTC().Format(time.RFC3339)
	rep.Commit = gitCommit()
	fmt.Fprintf(os.Stderr, "episim-bench: %d cells in %.1fs\n", cells, time.Since(start).Seconds())

	if err := writeReport(*outPath, rep); err != nil {
		fatal(err)
	}
	if rep.Failed() {
		for _, c := range rep.Cells {
			if c.Error != "" || c.TimedOut {
				fmt.Fprintf(os.Stderr, "episim-bench: FAILED cell %s: timed_out=%v %s\n", c.ID, c.TimedOut, c.Error)
			}
		}
		os.Exit(1)
	}
}

func runCompare(oldPath, newPath, noiseFlag, rssFlag string) int {
	if newPath == "" {
		fatal(errors.New("usage: episim-bench -compare OLD.json NEW.json [-noise 15%]"))
	}
	noise, err := benchmatrix.ParseNoise(noiseFlag)
	if err != nil {
		fatal(err)
	}
	rss, err := benchmatrix.ParseNoise(rssFlag)
	if err != nil {
		fatal(err)
	}
	oldR, err := readReport(oldPath)
	if err != nil {
		fatal(fmt.Errorf("old report: %w", err))
	}
	newR, err := readReport(newPath)
	if err != nil {
		fatal(fmt.Errorf("new report: %w", err))
	}
	res, err := benchmatrix.Compare(oldR, newR, noise, rss)
	if err != nil {
		fatal(err)
	}
	res.WriteTable(os.Stdout)
	if res.Failed() {
		fmt.Fprintln(os.Stderr, "episim-bench: regression gate FAILED")
		return 1
	}
	return 0
}

// runKernelGate enforces the hybrid kernel's performance contract on a
// single report: auto must beat dense by -min-speedup at the lowest
// seeding, and stay within the -noise band of dense everywhere else.
func runKernelGate(path, noiseFlag string, minSpeedup float64) int {
	band, err := benchmatrix.ParseNoise(noiseFlag)
	if err != nil {
		fatal(err)
	}
	rep, err := readReport(path)
	if err != nil {
		fatal(err)
	}
	res, err := benchmatrix.KernelGate(rep, minSpeedup, band)
	if err != nil {
		fatal(err)
	}
	res.WriteTable(os.Stdout)
	if res.Failed() {
		fmt.Fprintln(os.Stderr, "episim-bench: kernel gate FAILED")
		return 1
	}
	return 0
}

func loadSpec(specPath, preset string) (*benchmatrix.Spec, error) {
	if specPath == "" {
		return benchmatrix.Preset(preset)
	}
	var r io.Reader = os.Stdin
	if specPath != "-" {
		f, err := os.Open(specPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return benchmatrix.ParseSpec(r)
}

func readReport(path string) (*benchmatrix.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchmatrix.ReadReport(f)
}

func writeReport(path string, rep *benchmatrix.Report) error {
	if path == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeSpec(w io.Writer, spec *benchmatrix.Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}

// gitCommit stamps provenance best-effort: reports stay valid without a
// git checkout (e.g. run from an unpacked release artifact).
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "episim-bench:", err)
	os.Exit(2)
}
