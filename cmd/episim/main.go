// Command episim runs one epidemic simulation from the command line.
//
// Usage:
//
//	episim -state IA -scale 1000 -days 120 -ranks 64 -strategy GP -splitloc
//	episim -state WY -scale 200 -scenario scenario.txt -out curve.csv
//	episim -state IA -scale 1000 -json - | jq .attack_rate
//
// It prints per-day epidemic and messaging statistics, and optionally the
// modeled Blue Waters time per day. With -json the full Result (epidemic
// curve, final counts, per-day phase statistics) is emitted as
// machine-readable JSON; "-json -" sends it to stdout and moves the
// human-readable report to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	episim "repro"
	"repro/internal/disease"
	"repro/internal/ensemble"
)

func main() {
	var (
		state     = flag.String("state", "IA", "Table I preset (US, CA, NY, MI, NC, IA, AR, WY, or any contiguous state)")
		scale     = flag.Int("scale", 1000, "population scale divisor")
		days      = flag.Int("days", 120, "days to simulate")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		seeds     = flag.Int("infections", 10, "initial index cases")
		ranks     = flag.Int("ranks", 16, "logical PEs (core-modules)")
		strategy  = flag.String("strategy", "GP", "data distribution: RR or GP")
		splitLoc  = flag.Bool("splitloc", false, "apply heavy-location splitting first")
		parallel  = flag.Bool("parallel", false, "run one goroutine per rank")
		agg       = flag.Int("agg", 64, "message aggregation buffer (0 = off)")
		route2d   = flag.Bool("route2d", false, "TRAM-style 2D topological routing of aggregated messages")
		mixing    = flag.Float64("mixing", 0, "inter-sublocation mixing factor (0 = rooms are isolated)")
		kernel    = flag.String("kernel", "", "simulation kernel: dense (default), auto (active-set, byte-identical) or event (Gillespie, statistical)")
		kernelThr = flag.Float64("kernel-threshold", 0, "prevalence threshold gating the event kernel (0 = engine default)")
		diseaseF  = flag.String("disease", "", "disease model file (default: built-in ILI model)")
		scenarioF = flag.String("scenario", "", "intervention DSL file")
		model     = flag.Bool("model-time", false, "also print modeled Blue Waters time per day")
		curveOut  = flag.String("out", "", "write day,newinfections CSV to this file")
		jsonOut   = flag.String("json", "", "write the full Result as JSON to this file (\"-\" = stdout)")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "episim:", err)
		os.Exit(1)
	}
	// With -json - the machine-readable result owns stdout; the
	// human-readable report moves to stderr.
	report := io.Writer(os.Stdout)
	if *jsonOut == "-" {
		report = os.Stderr
	}

	pop, err := episim.GenerateState(*state, *scale, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(report, "population %s 1:%d — %d persons, %d locations, %d daily visits\n",
		*state, *scale, pop.NumPersons(), pop.NumLocations(), pop.NumVisits())

	var strat episim.Strategy
	switch strings.ToUpper(*strategy) {
	case "RR":
		strat = episim.RR
	case "GP":
		strat = episim.GP
	default:
		fail(fmt.Errorf("unknown strategy %q (want RR or GP)", *strategy))
	}
	pl, err := episim.BuildPlacement(pop, episim.PlacementOptions{
		Strategy: strat, SplitLoc: *splitLoc, Ranks: *ranks, Seed: *seed,
	})
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(report, "placement %s over %d ranks", pl.Label, pl.Ranks)
	if pl.SplitStats != nil {
		fmt.Fprintf(report, " (split %d heavy locations into %d)",
			pl.SplitStats.NumSplit, pl.SplitStats.NumFragments)
	}
	if pl.Quality != nil {
		fmt.Fprintf(report, " edge-cut=%d maxload/avg=%.2f/%.2f",
			pl.Quality.EdgeCut, pl.Quality.MaxOverAvg[0], pl.Quality.MaxOverAvg[1])
	}
	fmt.Fprintln(report)

	cfg := episim.SimConfig{
		Days: *days, Seed: *seed, InitialInfections: *seeds,
		Parallel: *parallel, AggBufferSize: *agg,
		Route2D: *route2d, Mixing: *mixing,
		Kernel: *kernel, KernelThreshold: *kernelThr,
	}
	if *diseaseF != "" {
		f, err := os.Open(*diseaseF)
		if err != nil {
			fail(err)
		}
		m, err := disease.Parse(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		cfg.Model = m
	}
	if *scenarioF != "" {
		b, err := os.ReadFile(*scenarioF)
		if err != nil {
			fail(err)
		}
		cfg.Scenario = string(b)
	}

	start := time.Now()
	res, err := episim.Run(pl, cfg)
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)

	peakDay, peak := 0, int64(0)
	for _, d := range res.Days {
		if d.NewInfections > peak {
			peak, peakDay = d.NewInfections, d.Day
		}
	}
	fmt.Fprintf(report, "simulated %d days in %v (%.1f ms/day wall clock)\n",
		len(res.Days), elapsed.Round(time.Millisecond),
		float64(elapsed.Milliseconds())/float64(len(res.Days)))
	fmt.Fprintf(report, "total infections %d (attack rate %.1f%%), peak %d new infections on day %d\n",
		res.TotalInfections, res.AttackRate*100, peak, peakDay)
	var msgs, wire int64
	for _, d := range res.Days {
		msgs += d.PersonPhase.Messages + d.LocationPhase.Messages
		wire += d.PersonPhase.WireMessages + d.LocationPhase.WireMessages
	}
	fmt.Fprintf(report, "messages: %d chare-level, %d wire (aggregation factor %.1f)\n",
		msgs, wire, float64(msgs)/float64(max(wire, 1)))
	if len(res.KernelDays) > 0 {
		parts := make([]string, 0, len(res.KernelDays))
		for _, k := range []string{"dense", "active", "event"} {
			if n := res.KernelDays[k]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", k, n))
			}
		}
		fmt.Fprintf(report, "kernel days: %s\n", strings.Join(parts, " "))
	}

	if *model {
		cost := episim.ModelDayTime(pl, episim.DefaultPerfOptions())
		fmt.Fprintf(report, "modeled Blue Waters time/day at %d ranks: %.4f s (person %.4f, location %.4f)\n",
			pl.Ranks, cost.Total, cost.Person.Total, cost.Location.Total)
	}
	if *curveOut != "" {
		f, err := os.Create(*curveOut)
		if err != nil {
			fail(err)
		}
		fmt.Fprintln(f, "day,newinfections")
		for _, d := range res.Days {
			fmt.Fprintf(f, "%d,%d\n", d.Day, d.NewInfections)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(report, "epidemic curve written to %s\n", *curveOut)
	}
	if *jsonOut == "-" {
		if err := ensemble.EncodeResult(os.Stdout, res); err != nil {
			fail(err)
		}
	} else if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fail(err)
		}
		if err := ensemble.EncodeResult(f, res); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(report, "result JSON written to %s\n", *jsonOut)
	}
}
