// Command popgen generates and inspects synthetic populations.
//
// Usage:
//
//	popgen -state CA -scale 1000 -out ca.pop.gz
//	popgen -in ca.pop.gz -stats
//	popgen -people 50000 -locations 12000 -out custom.pop.gz
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/splitloc"
	"repro/internal/stats"
	"repro/internal/synthpop"
)

func main() {
	var (
		state     = flag.String("state", "", "Table I / state preset to generate")
		scale     = flag.Int("scale", 1000, "scale divisor for presets")
		people    = flag.Int("people", 0, "custom population size (with -locations)")
		locations = flag.Int("locations", 0, "custom location count")
		seed      = flag.Uint64("seed", 1, "generation seed")
		out       = flag.String("out", "", "write population to this file (gob.gz)")
		in        = flag.String("in", "", "load population from this file instead of generating")
		showStats = flag.Bool("stats", true, "print distribution statistics")
		split     = flag.Bool("splitloc", false, "also report the splitLoc transform")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "popgen:", err)
		os.Exit(1)
	}

	var pop *synthpop.Population
	var err error
	switch {
	case *in != "":
		pop, err = synthpop.Load(*in)
	case *state != "":
		pop, err = synthpop.GenerateState(*state, *scale, *seed)
	case *people > 0 && *locations > 0:
		pop = synthpop.Generate(synthpop.DefaultConfig("custom", *people, *locations, *seed))
	default:
		err = fmt.Errorf("need -state, -in, or -people/-locations")
	}
	if err != nil {
		fail(err)
	}
	if err := pop.Validate(); err != nil {
		fail(err)
	}
	fmt.Printf("population %q: %d persons, %d locations, %d daily visits\n",
		pop.Name, pop.NumPersons(), pop.NumLocations(), pop.NumVisits())

	if *showStats {
		perPerson := make([]int, pop.NumPersons())
		for p := 0; p < pop.NumPersons(); p++ {
			perPerson[p] = len(pop.PersonVisits(int32(p)))
		}
		ps := stats.SummarizeInts(perPerson)
		fmt.Printf("visits/person: mean %.2f sigma %.2f max %.0f (paper: 5.5, sigma 2.6)\n",
			ps.Mean, ps.Std, ps.Max)
		counts := pop.VisitCountsPerLocation()
		fs := make([]float64, len(counts))
		for i, c := range counts {
			fs[i] = float64(c)
		}
		ls := stats.Summarize(fs)
		alpha := stats.PowerLawAlpha(fs, ls.Mean*4)
		fmt.Printf("visits/location: mean %.2f max %.0f (%.0fx mean), tail alpha %.2f\n",
			ls.Mean, ls.Max, ls.Max/ls.Mean, alpha)
	}

	if *split {
		s, st, err := splitloc.SplitPopulation(pop, splitloc.Options{})
		if err != nil {
			fail(err)
		}
		fmt.Printf("splitLoc: threshold %.1f, split %d locations into %d (growth %.2f%%), d_max %d -> %d\n",
			st.Threshold, st.NumSplit, st.NumFragments, st.GrowthFrac*100,
			st.MaxDegreePre, st.MaxDegreePost)
		_ = s
	}

	if *out != "" {
		if err := pop.Save(*out); err != nil {
			fail(err)
		}
		fmt.Printf("written to %s\n", *out)
	}
}
