// Package episim is the public API of the EpiSimdemics reproduction: a
// parallel agent-based contagion simulator over person–location social
// contact networks, implementing the system and the optimizations of
//
//	Yeom et al., "Overcoming the Scalability Challenges of Epidemic
//	Simulations on Blue Waters", IPDPS 2014.
//
// The typical flow is:
//
//	pop, _ := episim.GenerateState("IA", 1000, 42)       // Table I preset at 1:1000
//	pl, _ := episim.BuildPlacement(pop, episim.PlacementOptions{
//	        Strategy: episim.GP, SplitLoc: true, Ranks: 64})
//	res, _ := episim.Run(pl, episim.SimConfig{Days: 120, Seed: 42})
//	fmt.Println(res.AttackRate)
//
// and, for scalability studies on the Blue Waters machine model:
//
//	cost := episim.ModelDayTime(pl, episim.DefaultPerfOptions())
//	fmt.Println(cost.Total) // simulated seconds per simulated day
package episim

import (
	"fmt"
	"strings"

	"repro/internal/charm"
	"repro/internal/core"
	"repro/internal/disease"
	"repro/internal/graph"
	"repro/internal/interventions"
	"repro/internal/loadmodel"
	"repro/internal/partition"
	"repro/internal/splitloc"
	"repro/internal/synthpop"
)

// Re-exported population types.
type (
	// Population is a synthetic person–location visit network.
	Population = synthpop.Population
	// Result is a completed simulation.
	Result = core.Result
	// DayReport is one simulated day of a Result.
	DayReport = core.DayReport
)

// Strategy selects the data distribution method of Section III.
type Strategy int

// Distribution strategies (the paper's labels).
const (
	// RR assigns persons and locations to ranks round-robin.
	RR Strategy = iota
	// GP partitions the person–location graph with the multilevel
	// multi-constraint partitioner under the workload model.
	GP
)

func (s Strategy) String() string {
	switch s {
	case RR:
		return "RR"
	case GP:
		return "GP"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// GenerateState builds the Table I preset for a state name ("US", "CA",
// ..., or any of the 48 contiguous states + DC) at scale divisor 1:scale.
func GenerateState(name string, scale int, seed uint64) (*Population, error) {
	return synthpop.GenerateState(name, scale, seed)
}

// Generate builds a custom synthetic population.
func Generate(name string, people, locations int, seed uint64) *Population {
	return synthpop.Generate(synthpop.DefaultConfig(name, people, locations, seed))
}

// PlacementOptions selects how data is distributed over ranks.
type PlacementOptions struct {
	Strategy Strategy
	// SplitLoc applies the heavy-location splitting preprocessing of
	// Section III-C before distribution.
	SplitLoc bool
	Ranks    int
	Seed     uint64
	// SplitMaxPartitions drives the automatic split threshold (defaults to
	// max(Ranks, 16384)); see splitloc.Options.
	SplitMaxPartitions int
	// Imbalance is the partitioner's balance tolerance ε (default 0.10).
	Imbalance float64
	// EvaluateQuality computes partition quality metrics (edge cut, load
	// balance) even for RR; GP always computes them.
	EvaluateQuality bool
}

// Label returns the paper's label for the option combination: RR, GP,
// RR-splitLoc or GP-splitLoc.
func (o PlacementOptions) Label() string {
	l := o.Strategy.String()
	if o.SplitLoc {
		l += "-splitLoc"
	}
	return l
}

// Placement is a data distribution ready to simulate or to price on the
// machine model.
type Placement struct {
	// Pop is the population actually simulated (the split population when
	// SplitLoc was requested).
	Pop          *Population
	PersonRank   []int32
	LocationRank []int32
	Ranks        int
	Label        string
	// SplitStats reports the preprocessing (nil when SplitLoc was off).
	SplitStats *splitloc.Stats
	// Quality holds partition metrics over the bipartite graph (nil unless
	// computed). Constraint 0 is the person phase, constraint 1 the
	// location phase.
	Quality *partition.Quality
}

// BuildBipartiteGraph constructs the weighted bipartite person–location
// graph of Section III-B: person vertices carry the person-phase load
// (message count), location vertices the location-phase load (static load
// model of Section III-A), and edges carry visit multiplicity.
func BuildBipartiteGraph(pop *Population) *graph.Graph {
	nP, nL := pop.NumPersons(), pop.NumLocations()
	b := graph.NewBuilder(nP+nL, 2)
	model := loadmodel.Paper()
	visitCounts := pop.VisitCountsPerLocation()
	locLoads := make([]float64, nL)
	for l := 0; l < nL; l++ {
		locLoads[l] = model.Load(float64(2 * visitCounts[l]))
	}
	q := loadmodel.NewQuantizer(locLoads, 64)
	for l := 0; l < nL; l++ {
		b.SetVertexWeight(nP+l, 1, q.Quantize(locLoads[l]))
	}
	type edgeKey struct{ p, l int32 }
	edges := make(map[edgeKey]int64)
	for p := int32(0); p < int32(nP); p++ {
		visits := pop.PersonVisits(p)
		b.SetVertexWeight(int(p), 0, int64(loadmodel.PersonLoad(len(visits))))
		for _, v := range visits {
			edges[edgeKey{p, v.Loc}]++
		}
	}
	for k, w := range edges {
		b.AddEdge(int(k.p), nP+int(k.l), w)
	}
	return b.Build()
}

// BuildPlacement distributes a population over ranks per the options.
func BuildPlacement(pop *Population, opt PlacementOptions) (*Placement, error) {
	if opt.Ranks < 1 {
		opt.Ranks = 1
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	pl := &Placement{Pop: pop, Ranks: opt.Ranks, Label: opt.Label()}
	if opt.SplitLoc {
		maxParts := opt.SplitMaxPartitions
		if maxParts <= 0 {
			maxParts = 16384
		}
		if maxParts < opt.Ranks {
			maxParts = opt.Ranks
		}
		split, st, err := splitloc.SplitPopulation(pop, splitloc.Options{MaxPartitions: maxParts})
		if err != nil {
			return nil, fmt.Errorf("episim: %w", err)
		}
		pl.Pop = split
		pl.SplitStats = &st
	}
	nP, nL := pl.Pop.NumPersons(), pl.Pop.NumLocations()

	switch opt.Strategy {
	case RR:
		pr := partition.RoundRobin(nP, opt.Ranks)
		lr := partition.RoundRobin(nL, opt.Ranks)
		pl.PersonRank = pr.Assign
		pl.LocationRank = lr.Assign
		if opt.EvaluateQuality {
			g := BuildBipartiteGraph(pl.Pop)
			assign := make([]int32, nP+nL)
			copy(assign, pl.PersonRank)
			copy(assign[nP:], pl.LocationRank)
			q := partition.Evaluate(g, &partition.Partitioning{K: opt.Ranks, Assign: assign})
			pl.Quality = &q
		}
	case GP:
		g := BuildBipartiteGraph(pl.Pop)
		p := partition.Multilevel(g, opt.Ranks, partition.Options{
			Imbalance: opt.Imbalance,
			Seed:      opt.Seed,
		})
		pl.PersonRank = p.Assign[:nP]
		pl.LocationRank = p.Assign[nP : nP+nL]
		q := partition.Evaluate(g, p)
		pl.Quality = &q
	default:
		return nil, fmt.Errorf("episim: unknown strategy %v", opt.Strategy)
	}
	return pl, nil
}

// SimConfig configures a simulation run on a placement.
type SimConfig struct {
	Days              int
	Seed              uint64
	InitialInfections int
	// Model is the PTTS disease model; nil uses disease.Default().
	Model *disease.Model
	// Scenario is an intervention DSL program (empty = none).
	Scenario string
	// Parallel runs one goroutine per rank instead of the deterministic
	// sequential scheduler.
	Parallel bool
	// AggBufferSize enables message aggregation when > 0.
	AggBufferSize int
	// QuiescenceSync uses quiescence detection instead of completion
	// detection for phase synchronization.
	QuiescenceSync bool
	// Route2D enables TRAM-style topological routing of aggregated
	// messages (useful at large rank counts where per-destination buffers
	// underfill).
	Route2D bool
	// ChareFactor over-decomposes chares per rank (default 1).
	ChareFactor int
	// PEsPerProc and ProcsPerNode describe the SMP topology for locality
	// accounting.
	PEsPerProc   int
	ProcsPerNode int
	// Mixing enables inter-sublocation mixing (the paper's future-work
	// model): cross-room interaction within a location at this
	// transmission scale. On split populations, infectious visitors are
	// automatically replicated across fragments (Figure 6(b)).
	Mixing float64
	// Kernel selects the per-day simulation kernel: "" or "dense" (the
	// historical day-stepped path), "auto" (active-set stepping,
	// byte-identical to dense) or "event" (Gillespie path below the
	// prevalence threshold, statistically equivalent). See core.Config.
	Kernel string
	// KernelThreshold is the prevalence fraction gating the "event"
	// kernel (0 = default, see core.Config.KernelThreshold).
	KernelThreshold float64
}

// Run executes a simulation over the placement.
func Run(pl *Placement, cfg SimConfig) (*Result, error) {
	eng, err := newSimEngine(pl, cfg)
	if err != nil {
		return nil, err
	}
	return eng.Run()
}

// newSimEngine builds a configured engine without running it — the seam
// the fork-mode sweep uses to run a prefix (core.RunPrefix) or resume a
// branch (core.Restore) instead of a whole run.
func newSimEngine(pl *Placement, cfg SimConfig) (*core.Engine, error) {
	var scn *interventions.Scenario
	if strings.TrimSpace(cfg.Scenario) != "" {
		var err error
		scn, err = interventions.Parse(cfg.Scenario)
		if err != nil {
			return nil, fmt.Errorf("episim: scenario: %w", err)
		}
	}
	sync := charm.CompletionDetection
	if cfg.QuiescenceSync {
		sync = charm.QuiescenceDetection
	}
	eng, err := core.New(core.Config{
		Population:        pl.Pop,
		Disease:           cfg.Model,
		Scenario:          scn,
		Days:              cfg.Days,
		Seed:              cfg.Seed,
		InitialInfections: cfg.InitialInfections,
		Ranks:             pl.Ranks,
		Parallel:          cfg.Parallel,
		Topology: charm.Topology{
			PEsPerProc:   cfg.PEsPerProc,
			ProcsPerNode: cfg.ProcsPerNode,
		},
		AggBufferSize:   cfg.AggBufferSize,
		Route2D:         cfg.Route2D,
		SyncMode:        sync,
		ChareFactor:     cfg.ChareFactor,
		PersonRank:      pl.PersonRank,
		LocationRank:    pl.LocationRank,
		Mixing:          cfg.Mixing,
		Kernel:          cfg.Kernel,
		KernelThreshold: cfg.KernelThreshold,
	})
	if err != nil {
		return nil, err
	}
	return eng, nil
}
