# 2009 H1N1 pandemic influenza: shorter latency than seasonal flu, a
# vaccinated treatment (late-arriving campaign) and an antiviral course
# that mostly cuts infectivity.
model h1n1-2009
transmissibility 3.4e-5
treatment vaccinated susceptibility 0.2 infectivity 0.5
treatment antiviral susceptibility 0.7 infectivity 0.4

state susceptible
  susceptibility 1.0
  dwell forever

state latent
  dwell uniform 1 2
  next infectious 1.0

state infectious
  infectivity 1.0
  dwell fixed 1
  next symptomatic 0.55
  next asymptomatic 0.45
  next[vaccinated] symptomatic 0.2
  next[vaccinated] asymptomatic 0.8

state symptomatic
  infectivity 1.4
  dwell uniform 4 7
  next recovered 1.0

state asymptomatic
  infectivity 0.6
  dwell geometric 2 2
  next recovered 1.0

state recovered
  dwell forever

entry susceptible
infect latent
