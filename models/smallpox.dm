# Smallpox PTTS: the long 7-17 day incubation delays the epidemic peak
# well past influenza's, which is what the course-of-action analyses of
# the paper's introduction exploit (time to react).
model smallpox
transmissibility 1.2e-5

state susceptible
  susceptibility 1.0
  dwell forever

state incubating
  dwell uniform 7 17
  next prodromal 1.0

state prodromal
  infectivity 0.3
  dwell uniform 2 4
  next rash 1.0

state rash
  infectivity 1.8
  dwell uniform 5 9
  next recovered 0.7
  next dead 0.3

state recovered
  dwell forever

state dead
  dwell forever

entry susceptible
infect incubating
