# Seasonal influenza-like illness: the ILI model the experiments use,
# shipped as a file so runs can tweak it without recompiling.
# susceptible -> latent -> infectious -> {symptomatic | asymptomatic} -> recovered
model influenza
transmissibility 2.8e-5
treatment vaccinated susceptibility 0.3 infectivity 0.5

state susceptible
  susceptibility 1.0
  dwell forever

state latent
  dwell uniform 1 3
  next infectious 1.0

state infectious
  infectivity 1.0
  dwell fixed 1
  next symptomatic 0.66
  next asymptomatic 0.34
  next[vaccinated] symptomatic 0.25
  next[vaccinated] asymptomatic 0.75

state symptomatic
  infectivity 1.5
  dwell uniform 3 6
  next recovered 1.0

state asymptomatic
  infectivity 0.5
  dwell uniform 2 4
  next recovered 1.0

state recovered
  dwell forever

entry susceptible
infect latent
