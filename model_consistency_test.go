package episim_test

import (
	"math"
	"testing"

	episim "repro"
)

// TestModelMatchesRuntimeCounters validates the machine-model pipeline
// against the real runtime: the cross-rank visit-message count that
// ModelDayTime computes from the placement must equal what the charm
// runtime actually sends on a day with no behavioral changes, and the
// aggregated wire count must match the runtime's aggregator. This ties
// Figure 13's modeled curves to measured execution.
func TestModelMatchesRuntimeCounters(t *testing.T) {
	pop := episim.Generate("consistency", 6000, 1500, 3)
	pl, err := episim.BuildPlacement(pop, episim.PlacementOptions{
		Strategy: episim.GP, Ranks: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Runtime truth: day 1 (normative schedules, no interventions).
	res, err := episim.Run(pl, episim.SimConfig{
		Days: 1, Seed: 3, InitialInfections: 1, AggBufferSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	day := res.Days[0]
	// Chare-level visit messages = all visits; remote ones cross ranks.
	if day.PersonPhase.Messages != int64(pl.Pop.NumVisits()) {
		t.Fatalf("runtime sent %d visit messages, want %d",
			day.PersonPhase.Messages, pl.Pop.NumVisits())
	}
	var runtimeRemote int64
	runtimeRemote = day.PersonPhase.Messages - day.PersonPhase.ByLocality[0]

	// Model truth: count cross-rank visits from the placement directly.
	var modelRemote, modelWire int64
	pairs := map[[2]int32]int64{}
	for _, v := range pl.Pop.Visits {
		src, dst := pl.PersonRank[v.Person], pl.LocationRank[v.Loc]
		if src != dst {
			modelRemote++
			pairs[[2]int32{src, dst}]++
		}
	}
	for _, c := range pairs {
		modelWire += (c + 63) / 64
	}
	if runtimeRemote != modelRemote {
		t.Fatalf("remote visit messages: runtime %d vs model %d", runtimeRemote, modelRemote)
	}
	if day.PersonPhase.WireMessages != modelWire {
		t.Fatalf("wire messages: runtime %d vs model %d",
			day.PersonPhase.WireMessages, modelWire)
	}

	// And ModelDayTime's person-phase compute must equal the closed form.
	opt := episim.DefaultPerfOptions()
	cost := episim.ModelDayTime(pl, opt)
	var maxRankVisits int64
	perRank := make([]int64, pl.Ranks)
	for _, v := range pl.Pop.Visits {
		perRank[pl.PersonRank[v.Person]]++
	}
	for _, c := range perRank {
		if c > maxRankVisits {
			maxRankVisits = c
		}
	}
	wantCompute := float64(maxRankVisits) * opt.PersonSecPerVisit
	if math.Abs(cost.Person.Compute-wantCompute)/wantCompute > 0.01 {
		t.Fatalf("person-phase compute %v, want %v", cost.Person.Compute, wantCompute)
	}
}
