package episim

import (
	"testing"

	"repro/internal/machine"
)

func smallPop(t testing.TB) *Population {
	t.Helper()
	pop := Generate("facade-test", 4000, 900, 5)
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestGenerateState(t *testing.T) {
	pop, err := GenerateState("WY", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pop.NumPersons() < 1000 {
		t.Fatalf("WY 1:200 too small: %d", pop.NumPersons())
	}
	if _, err := GenerateState("XX", 100, 1); err == nil {
		t.Fatal("unknown state accepted")
	}
}

func TestBuildBipartiteGraph(t *testing.T) {
	pop := smallPop(t)
	g := BuildBipartiteGraph(pop)
	if g.NumVertices() != pop.NumPersons()+pop.NumLocations() {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Constraint 0 totals the person loads (= total visits), constraint 1
	// is positive only on location vertices.
	if g.TotalVertexWeight(0) != int64(pop.NumVisits()) {
		t.Fatalf("person-phase weight %d, want %d", g.TotalVertexWeight(0), pop.NumVisits())
	}
	for p := 0; p < pop.NumPersons(); p++ {
		if g.VertexWeight(p, 1) != 0 {
			t.Fatal("person vertex carries location load")
		}
	}
	if g.TotalVertexWeight(1) == 0 {
		t.Fatal("no location load")
	}
	// Edge weight totals the visit count (each visit adds 1 to its edge).
	if g.TotalEdgeWeight() != int64(pop.NumVisits()) {
		t.Fatalf("edge weight %d, want %d", g.TotalEdgeWeight(), pop.NumVisits())
	}
}

func TestBuildPlacementRR(t *testing.T) {
	pop := smallPop(t)
	pl, err := BuildPlacement(pop, PlacementOptions{Strategy: RR, Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Label != "RR" {
		t.Fatalf("label %q", pl.Label)
	}
	if pl.PersonRank[9] != 1 || pl.LocationRank[16] != 0 {
		t.Fatal("round robin broken")
	}
	if pl.SplitStats != nil || pl.Quality != nil {
		t.Fatal("RR should not split or evaluate by default")
	}
}

func TestBuildPlacementGP(t *testing.T) {
	pop := smallPop(t)
	pl, err := BuildPlacement(pop, PlacementOptions{Strategy: GP, Ranks: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Quality == nil {
		t.Fatal("GP must report quality")
	}
	// GP must cut fewer edges than RR.
	rr, err := BuildPlacement(pop, PlacementOptions{Strategy: RR, Ranks: 8, EvaluateQuality: true})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Quality.EdgeCut >= rr.Quality.EdgeCut {
		t.Fatalf("GP cut %d !< RR cut %d", pl.Quality.EdgeCut, rr.Quality.EdgeCut)
	}
}

func TestBuildPlacementSplitLoc(t *testing.T) {
	pop := smallPop(t)
	pl, err := BuildPlacement(pop, PlacementOptions{
		Strategy: GP, SplitLoc: true, Ranks: 8, SplitMaxPartitions: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Label != "GP-splitLoc" {
		t.Fatalf("label %q", pl.Label)
	}
	if pl.SplitStats == nil || pl.SplitStats.NumSplit == 0 {
		t.Fatal("splitLoc did nothing")
	}
	if pl.Pop == pop {
		t.Fatal("split placement must carry the split population")
	}
	if len(pl.LocationRank) != pl.Pop.NumLocations() {
		t.Fatal("location ranks not resized for split population")
	}
}

func TestRunEndToEnd(t *testing.T) {
	pop := smallPop(t)
	pl, err := BuildPlacement(pop, PlacementOptions{Strategy: GP, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pl, SimConfig{Days: 20, Seed: 1, InitialInfections: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Days) != 20 {
		t.Fatalf("days = %d", len(res.Days))
	}
	if res.TotalInfections < 10 {
		t.Fatalf("infections = %d", res.TotalInfections)
	}
}

func TestRunWithScenario(t *testing.T) {
	pop := smallPop(t)
	pl, _ := BuildPlacement(pop, PlacementOptions{Strategy: RR, Ranks: 2})
	res, err := Run(pl, SimConfig{
		Days: 10, Seed: 1, InitialInfections: 5,
		Scenario: "when day >= 2 { close school for 5 }",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Days[4].PersonPhase.Messages >= res.Days[0].PersonPhase.Messages {
		t.Fatal("school closure did not reduce visits")
	}
	if _, err := Run(pl, SimConfig{Days: 1, Scenario: "when {"}); err == nil {
		t.Fatal("bad scenario accepted")
	}
}

func TestStrategyInvarianceThroughFacade(t *testing.T) {
	pop := smallPop(t)
	cfgs := []PlacementOptions{
		{Strategy: RR, Ranks: 4},
		{Strategy: GP, Ranks: 4},
		{Strategy: GP, SplitLoc: true, Ranks: 4, SplitMaxPartitions: 2048},
	}
	var first []int64
	for i, po := range cfgs {
		pl, err := BuildPlacement(pop, po)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(pl, SimConfig{Days: 15, Seed: 99, InitialInfections: 8})
		if err != nil {
			t.Fatal(err)
		}
		curve := res.EpiCurve()
		if i == 0 {
			first = curve
			continue
		}
		for d := range curve {
			if curve[d] != first[d] {
				t.Fatalf("%s changed the epidemic on day %d: %d vs %d",
					po.Label(), d, curve[d], first[d])
			}
		}
	}
}

func TestModelDayTimeScales(t *testing.T) {
	pop := smallPop(t)
	opt := DefaultPerfOptions()
	var t1 float64
	var prev float64
	for _, k := range []int{1, 4, 16} {
		pl, err := BuildPlacement(pop, PlacementOptions{Strategy: GP, SplitLoc: true, Ranks: k})
		if err != nil {
			t.Fatal(err)
		}
		d := ModelDayTime(pl, opt)
		if d.Total <= 0 {
			t.Fatalf("k=%d: non-positive day time", k)
		}
		if k == 1 {
			t1 = d.Total
		} else if d.Total >= prev {
			t.Fatalf("k=%d did not speed up: %v >= %v", k, d.Total, prev)
		}
		prev = d.Total
	}
	if machine.Speedup(t1, prev) < 3 {
		t.Fatalf("16 ranks speedup %v too low", machine.Speedup(t1, prev))
	}
}

// remoteVisits counts visit messages that cross ranks under a placement.
func remoteVisits(pl *Placement) int64 {
	var n int64
	for _, v := range pl.Pop.Visits {
		if pl.PersonRank[v.Person] != pl.LocationRank[v.Loc] {
			n++
		}
	}
	return n
}

func TestGPImprovesLocalityOverRR(t *testing.T) {
	// The partitioning objective is "to minimize the communication between
	// the computation phases subject to load balancing constraints": GP
	// must keep far more visits rank-local than RR. (Total modeled time at
	// tiny scales is dominated by the heavy-tail compute imbalance, which
	// is Figure 13's point — so locality, not total time, is the robust
	// assertion here.)
	pop := smallPop(t)
	k := 8
	rr, _ := BuildPlacement(pop, PlacementOptions{Strategy: RR, Ranks: k})
	gp, _ := BuildPlacement(pop, PlacementOptions{Strategy: GP, Ranks: k, Seed: 5})
	remRR, remGP := remoteVisits(rr), remoteVisits(gp)
	if float64(remGP) > 0.7*float64(remRR) {
		t.Fatalf("GP remote visits %d not clearly below RR %d", remGP, remRR)
	}
	// And the messaging cost model must see the difference in the person
	// phase communication terms.
	opt := DefaultPerfOptions()
	cRR := ModelDayTime(rr, opt)
	cGP := ModelDayTime(gp, opt)
	if cGP.Person.Overhead+cGP.Person.Network >= cRR.Person.Overhead+cRR.Person.Network {
		t.Fatalf("GP comm cost %v not below RR %v",
			cGP.Person.Overhead+cGP.Person.Network, cRR.Person.Overhead+cRR.Person.Network)
	}
}

func TestNoOptSlowerThanOptimized(t *testing.T) {
	pop := smallPop(t)
	pl, _ := BuildPlacement(pop, PlacementOptions{Strategy: RR, Ranks: 32})
	tOpt := ModelDayTime(pl, DefaultPerfOptions()).Total
	tNoOpt := ModelDayTime(pl, NoOptPerfOptions()).Total
	if tNoOpt <= tOpt {
		t.Fatalf("no-opt (%v) not slower than optimized (%v)", tNoOpt, tOpt)
	}
}

func TestTorusMappingOrdering(t *testing.T) {
	// Recursive-bisection ranks talk mostly to nearby ranks, so a
	// contiguous rank→node mapping must beat (or tie) the
	// topology-oblivious scattered mapping on the Gemini torus.
	pop := smallPop(t)
	pl, err := BuildPlacement(pop, PlacementOptions{Strategy: GP, Ranks: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cont := DefaultPerfOptions()
	cont.Mapping = MapContiguous
	scat := DefaultPerfOptions()
	scat.Mapping = MapScattered
	tc := ModelDayTime(pl, cont).Total
	ts := ModelDayTime(pl, scat).Total
	if tc > ts {
		t.Fatalf("contiguous mapping (%v) worse than scattered (%v)", tc, ts)
	}
	// And hop pricing must actually engage (scattered strictly worse than
	// a hop-free machine).
	free := DefaultPerfOptions()
	free.Machine.PerHopLatency = 0
	tf := ModelDayTime(pl, free).Total
	if ts <= tf {
		t.Fatalf("scattered mapping (%v) should pay hop latency over hop-free (%v)", ts, tf)
	}
}

func TestPlacementLabels(t *testing.T) {
	cases := map[string]PlacementOptions{
		"RR":          {Strategy: RR},
		"GP":          {Strategy: GP},
		"RR-splitLoc": {Strategy: RR, SplitLoc: true},
		"GP-splitLoc": {Strategy: GP, SplitLoc: true},
	}
	for want, o := range cases {
		if got := o.Label(); got != want {
			t.Fatalf("label %q, want %q", got, want)
		}
	}
}
