// Ensemble walkthrough: declare a scenario sweep in code, run it through
// the placement-caching executor, and read the aggregate — mean and
// p10/p90 epidemic bands, attack-rate confidence intervals, and the
// cache accounting that proves each unique placement was built once.
//
//	go run ./examples/ensemble
package main

import (
	"fmt"
	"log"
	"strings"

	episim "repro"
)

func main() {
	// The grid: one Table I state, the paper's two headline distributions,
	// an unmitigated baseline vs a reactive school closure, 16 seeded
	// replicates per cell. 2×2×16 = 64 simulations, but only 2 placements
	// are ever partitioned — each is shared read-only by the 32 runs that
	// use it.
	spec := &episim.SweepSpec{
		Populations: []episim.SweepPopulation{{State: "WY", Scale: 200}},
		Placements: []episim.SweepPlacement{
			{Strategy: "RR", Ranks: 16},
			{Strategy: "GP", SplitLoc: true, Ranks: 16},
		},
		Scenarios: []episim.SweepScenario{
			{Name: "baseline"},
			{Name: "school-closure",
				Text: "when prevalence(symptomatic) > 0.005 and day >= 3 { close school for 14 }"},
		},
		Replicates:        16,
		Days:              120,
		Seed:              42,
		InitialInfections: 10,
		AggBufferSize:     64,
	}

	res, err := episim.RunSweep(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d simulations; built %d unique placements, %d populations\n\n",
		res.Simulations, len(res.PlacementBuilds), len(res.PopulationBuilds))

	// Attack-rate table: replicate seeds are shared across scenarios
	// (common random numbers), so the baseline/closure difference is the
	// intervention's paired effect, not seed noise.
	fmt.Println("cell                                attack rate   95% CI")
	for _, c := range res.Cells {
		fmt.Printf("%-36s %5.1f%%      [%.1f%%, %.1f%%]\n",
			c.Placement+" "+c.Scenario,
			c.AttackRate.Mean*100, c.AttackRate.CILo*100, c.AttackRate.CIHi*100)
	}

	// Weekly epidemic band of the baseline cell: mean with the p10–p90
	// replicate envelope.
	base := res.Cells[0]
	fmt.Printf("\n%s: weekly new infections, mean (p10–p90)\n", base.Label)
	for week := 0; week*7 < base.Days; week++ {
		var mean, lo, hi float64
		for d := week * 7; d < base.Days && d < (week+1)*7; d++ {
			mean += base.MeanCurve[d]
			lo += base.QuantileCurves[0][d]
			hi += base.QuantileCurves[2][d]
		}
		bar := int(mean / 12)
		fmt.Printf("w%02d %7.1f (%6.1f –%7.1f) %s\n",
			week+1, mean, lo, hi, strings.Repeat("#", bar))
	}
}
