// Course-of-action analysis: the paper's motivating H1N1 use case
// (Section I — "analysts performed course-of-action analyses to estimate
// the impact of closing schools and shutting down workplaces").
//
// Runs the same outbreak under four policies and compares attack rates,
// peak days and peak heights — the quantities a public health decision
// maker weighs inside the 24-hour decision cycle the paper describes.
//
//	go run ./examples/interventions
package main

import (
	"fmt"
	"log"

	episim "repro"
)

// policies are the intervention DSL programs under comparison.
var policies = []struct {
	name     string
	scenario string
}{
	{"baseline (do nothing)", ""},
	{"close schools at 0.5% prevalence", `
when prevalence(symptomatic) > 0.005 {
    close school for 28
}`},
	{"vaccinate 40% early", `
when day >= 5 {
    vaccinate 0.4 of people
}`},
	{"combined response", `
when prevalence(symptomatic) > 0.005 {
    close school for 28
    reduce shop visits by 0.5 for 28
    isolate symptomatic for 60
}
when day >= 5 {
    vaccinate 0.25 of people
}`},
}

func main() {
	pop, err := episim.GenerateState("IA", 500, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population IA 1:500 — %d people, %d locations\n\n",
		pop.NumPersons(), pop.NumLocations())

	pl, err := episim.BuildPlacement(pop, episim.PlacementOptions{
		Strategy: episim.GP, SplitLoc: true, Ranks: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-36s %12s %10s %10s\n", "policy", "attack rate", "peak day", "peak size")
	var baseline float64
	for i, p := range policies {
		res, err := episim.Run(pl, episim.SimConfig{
			Days:              150,
			Seed:              7,
			InitialInfections: 8,
			Scenario:          p.scenario,
			AggBufferSize:     64,
		})
		if err != nil {
			log.Fatal(err)
		}
		peakDay, peak := 0, int64(0)
		for _, d := range res.Days {
			if d.NewInfections > peak {
				peak, peakDay = d.NewInfections, d.Day
			}
		}
		marker := ""
		if i == 0 {
			baseline = res.AttackRate
		} else if res.AttackRate < baseline {
			marker = fmt.Sprintf("  (-%.0f%% vs baseline)", (baseline-res.AttackRate)/baseline*100)
		}
		fmt.Printf("%-36s %11.1f%% %10d %10d%s\n",
			p.name, res.AttackRate*100, peakDay, peak, marker)
	}
}
