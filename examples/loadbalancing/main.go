// Dynamic load balancing demo (the paper's Section VII future work):
// an intervention (school closures) abruptly shifts the location workload
// mid-epidemic; measurement-based rebalancing with application-specific
// load prediction restores balance — without perturbing the epidemic,
// thanks to partition invariance.
//
//	go run ./examples/loadbalancing
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/disease"
	"repro/internal/interventions"
	"repro/internal/loadbalance"
	"repro/internal/loadmodel"
	"repro/internal/synthpop"
)

func main() {
	pop, err := synthpop.GenerateState("WY", 100, 5)
	if err != nil {
		log.Fatal(err)
	}
	ranks := 16
	model := disease.Default()
	model.Transmissibility = 8e-5

	scenario, err := interventions.Parse(`
when day == 15 {
    close school for 60
    reduce work visits by 0.4 for 60
}`)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := core.New(core.Config{
		Population: pop, Disease: model, Scenario: scenario,
		Days: 1, Seed: 5, InitialInfections: 10, Ranks: ranks,
		CollectLocationLoads: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	predictor := &loadbalance.Predictor{
		Dynamic: loadmodel.Dynamic{C1: 1, C2: 0.05}, // events + interactions
	}
	fmt.Printf("WY 1:100 on %d ranks; schools close on day 15\n\n", ranks)
	fmt.Printf("%4s %10s %12s %12s %s\n", "day", "infected", "imbalance", "migrations", "")

	days := 40
	totalMigrations := 0
	for day := 1; day <= days; day++ {
		rep := eng.RunDay(day)
		events, inter := eng.LocationLoads()
		infectious := int(rep.Counts["infectious"] + rep.Counts["symptomatic"] + rep.Counts["asymptomatic"])
		loads := predictor.Predict(events, inter, infectious)

		d, err := loadbalance.GreedyRefine(eng.LocationRanks(), loads, ranks, 1.10, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		// Menon-style trigger: only migrate when the gain justifies it.
		if loadbalance.ShouldRebalance(d.ImbalanceBefore, 1.15,
			d.ImbalanceBefore-d.ImbalanceAfter, 2.0, days-day) {
			migrated, err := eng.MigrateLocations(d.Assign)
			if err != nil {
				log.Fatal(err)
			}
			totalMigrations += migrated
			note = fmt.Sprintf("rebalanced: %.2f -> %.2f", d.ImbalanceBefore, d.ImbalanceAfter)
		}
		if day%5 == 0 || note != "" {
			fmt.Printf("%4d %10d %12.2f %12d %s\n",
				day, rep.NewInfections, d.ImbalanceBefore, totalMigrations, note)
		}
	}
	fmt.Printf("\n%d locations migrated in total; the epidemic curve is identical to the\n", totalMigrations)
	fmt.Println("non-rebalanced run (keyed randomness makes migration invisible to outcomes).")
}
