// Partitioning walkthrough on the paper's own example: the 13-node graph
// of Figure 2 and the heavy-node splitting of Figure 6, then the same
// pipeline on a real synthetic population — showing why splitLoc is what
// unlocks balance (Section III).
//
//	go run ./examples/partitioning
package main

import (
	"fmt"
	"log"

	episim "repro"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/splitloc"
)

func main() {
	// --- Part 1: the Figure 2 graph. ---
	b := graph.NewBuilder(13, 1)
	weights := []int64{8, 2, 2, 2, 2, 2, 1, 2, 1, 2, 2, 2, 2}
	for v, wt := range weights {
		b.SetVertexWeight(v, 0, wt)
	}
	for _, spoke := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		b.AddEdge(0, spoke, 1)
	}
	b.AddEdge(9, 10, 1)
	b.AddEdge(10, 11, 1)
	b.AddEdge(11, 12, 1)
	b.AddEdge(1, 9, 1)
	b.AddEdge(5, 12, 1)
	g := b.Build()

	show := func(label string, gr *graph.Graph, p *partition.Partitioning) {
		q := partition.Evaluate(gr, p)
		var maxLoad int64
		for _, pw := range q.PartWeights {
			if pw[0] > maxLoad {
				maxLoad = pw[0]
			}
		}
		fmt.Printf("  %-28s cut=%2d  max-load=%2d  max/avg=%.2f\n",
			label, q.EdgeCut, maxLoad, q.MaxOverAvg[0])
	}

	fmt.Println("Figure 2 graph, 5 parts — the balance/cut tradeoff:")
	loads := make([]int64, g.NumVertices())
	for v := range loads {
		loads[v] = g.VertexWeight(v, 0)
	}
	show("load-optimal (ignores edges)", g, partition.LPT(loads, 5))
	show("cut-optimal (loose balance)", g, partition.Multilevel(g, 5, partition.Options{Imbalance: 0.67, Seed: 3}))

	fmt.Println("\nafter splitting hub node 1 in two (Figure 6a, divide edges):")
	split := splitloc.DivideEdgesVertex(g, 0, 2)
	p := partition.Multilevel(split, 5, partition.Options{Imbalance: 0.15, Seed: 3})
	show("multilevel on split graph", split, p)
	fmt.Println("  -> with the hub split, one partitioning gets BOTH good balance and low cut")

	// --- Part 2: the same effect on a synthetic population. ---
	pop, err := episim.GenerateState("WY", 100, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWY 1:100 (%d people, %d locations), 64 ranks:\n",
		pop.NumPersons(), pop.NumLocations())
	fmt.Printf("  %-14s %10s %10s %12s %12s\n", "strategy", "edge cut", "max cut", "loc balance", "Sub(loc)")
	for _, po := range []episim.PlacementOptions{
		{Strategy: episim.RR},
		{Strategy: episim.GP},
		{Strategy: episim.RR, SplitLoc: true},
		{Strategy: episim.GP, SplitLoc: true},
	} {
		po.Ranks = 64
		po.Seed = 3
		po.EvaluateQuality = true
		pl, err := episim.BuildPlacement(pop, po)
		if err != nil {
			log.Fatal(err)
		}
		q := pl.Quality
		fmt.Printf("  %-14s %10d %10d %12.2f %12.0f\n",
			pl.Label, q.EdgeCut, q.MaxPartCut, q.MaxOverAvg[1], q.SpeedupUpperBound(1))
	}
	fmt.Println("\nSub(loc) is the speedup bound L_tot/L_max of Section III-B:")
	fmt.Println("splitting heavy locations is what raises it — partitioning alone cannot.")
}
