// Strong-scaling study on the Blue Waters machine model: reproduces the
// shape of the paper's Figure 13 for one state — round-robin distributions
// flatten at the heaviest location's load, splitLoc keeps scaling.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	episim "repro"
	"repro/internal/machine"
)

func main() {
	pop, err := episim.GenerateState("IA", 300, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IA 1:300 — %d people, %d locations, %d visits/day\n\n",
		pop.NumPersons(), pop.NumLocations(), pop.NumVisits())

	perf := episim.DefaultPerfOptions()
	strategies := []episim.PlacementOptions{
		{Strategy: episim.RR},
		{Strategy: episim.GP},
		{Strategy: episim.RR, SplitLoc: true},
		{Strategy: episim.GP, SplitLoc: true},
	}
	ks := []int{1, 4, 16, 64, 256, 1024}

	fmt.Printf("modeled simulation time per day (s) on the Cray XE6 model:\n")
	fmt.Printf("%-14s", "core-modules")
	for _, k := range ks {
		fmt.Printf(" %9d", k)
	}
	fmt.Println()

	t1 := map[string]float64{}
	for _, po := range strategies {
		po.Seed = 11
		fmt.Printf("%-14s", po.Label())
		for _, k := range ks {
			po.Ranks = k
			pl, err := episim.BuildPlacement(pop, po)
			if err != nil {
				log.Fatal(err)
			}
			t := episim.ModelDayTime(pl, perf).Total
			if k == 1 {
				t1[po.Label()] = t
			}
			fmt.Printf(" %9.4f", t)
		}
		fmt.Println()
	}

	fmt.Printf("\nspeedup and efficiency at %d core-modules:\n", ks[len(ks)-1])
	for _, po := range strategies {
		po.Seed = 11
		po.Ranks = ks[len(ks)-1]
		pl, err := episim.BuildPlacement(pop, po)
		if err != nil {
			log.Fatal(err)
		}
		t := episim.ModelDayTime(pl, perf).Total
		sp := machine.Speedup(t1[po.Label()], t)
		fmt.Printf("  %-14s %7.0fx  (%.1f%% efficiency)\n",
			po.Label(), sp, 100*machine.Efficiency(t1[po.Label()], t, po.Ranks))
	}
	fmt.Println("\nthe paper's Figure 13 shape: RR/GP flatten at the l_max bound;")
	fmt.Println("splitLoc keeps scaling, and GP-splitLoc wins on communication.")
}
