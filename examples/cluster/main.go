// Example cluster boots two in-process episimd backends behind an
// episim-gw gateway and demonstrates the scale-out properties:
//
//  1. named-backend identity — each backend's routing identity is the
//     name its daemon reports on /healthz (episimd -name), so job ids
//     read "node-0-sw-000001" and the backend list can be reordered or
//     re-addressed without breaking ids or moving keys;
//  2. content-key affinity — two submissions of the same sweep route to
//     the same backend, and the second performs zero placement builds
//     (the routed backend's cache is warm);
//  3. transparent proxying — the client is the ordinary episimd client
//     pointed at the gateway; streams, results and stats just work;
//  4. failover — killing the routed backend re-routes the next
//     submission to the survivor with no client-visible change;
//  5. hardening knobs — the gateway here also runs with load-aware
//     spill (SpillQueueDepth) and per-client admission control armed;
//     the final stats line shows their counters (zero in this calm
//     walkthrough — they exist to clip real bursts);
//  6. traced submission — the client pins a trace id (Client.TraceID →
//     X-Episim-Trace-Id), the gateway forwards it to the owning
//     backend, and the job's span timeline reads back through the
//     gateway with that id and per-stage timings (the same data
//     `sweep -server URL -trace ID` prints).
//
// Run with:
//
//	go run ./examples/cluster
//
// In production each backend is its own `episimd -name ...` process (or
// machine) and the gateway is
// `episim-gw -backends http://a:8321,http://b:8321 -spill-queue-depth 8
// -submit-rate 50 -max-inflight-per-client 32`.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	episim "repro"
	"repro/client"
	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	// Two share-nothing backends, each with its own cache and its own
	// name — the name, not the list position, is its identity.
	var urls []string
	var srvs []*http.Server
	var cores []*server.Server
	for i := 0; i < 2; i++ {
		core, err := server.New(server.Config{Workers: 4, MaxActive: 2, Name: fmt.Sprintf("node-%d", i)})
		if err != nil {
			log.Fatal(err)
		}
		defer core.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: core.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		urls = append(urls, "http://"+ln.Addr().String())
		srvs = append(srvs, hs)
		cores = append(cores, core)
	}

	// The gateway: stateless, routes by placement content key, spills
	// off a saturated owner, and throttles unruly clients.
	gw, err := cluster.New(cluster.Config{
		Backends:             urls,
		ProbeInterval:        200 * time.Millisecond,
		FailAfter:            1,
		SpillQueueDepth:      8,  // divert when the owner has >8 sweeps queued
		SubmitRate:           50, // per-client sweeps/sec, burst 2×
		MaxInflightPerClient: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ghs := &http.Server{Handler: gw.Handler()}
	go ghs.Serve(gln)
	defer ghs.Close()
	gwURL := "http://" + gln.Addr().String()
	fmt.Printf("episim-gw on %s fronting %d backends\n", gwURL, len(urls))

	fleetStats := func() cluster.StatsReply {
		resp, err := http.Get(gwURL + "/v1/stats")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var st cluster.StatsReply
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			log.Fatal(err)
		}
		return st
	}

	// The ordinary episimd client, pointed at the gateway. ClientID keys
	// the gateway's admission quotas (and Submit honors its 429
	// Retry-After automatically).
	c := client.New(gwURL)
	c.ClientID = "example-tenant"
	// A fixed trace id rides every request as X-Episim-Trace-Id; the
	// gateway forwards it, the owning backend stamps it on the job, and
	// it comes back on acks, statuses, terminal events, and log lines.
	c.TraceID = "t-cluster-example"
	ctx := context.Background()
	spec := &episim.SweepSpec{
		Populations: []episim.SweepPopulation{{State: "WY", Scale: 600}},
		Placements:  []episim.SweepPlacement{{Strategy: "GP", SplitLoc: true, Ranks: 8}},
		Replicates:  4,
		Days:        30,
		Seed:        7,
	}
	spec.Normalize()

	run := func(tag string) string {
		ack, err := c.Submit(ctx, spec)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Stream(ctx, ack.ID, 0, func(client.Event) error { return nil }); err != nil {
			log.Fatal(err)
		}
		st := fleetStats()
		routed := ""
		for _, b := range st.Backends {
			routed += fmt.Sprintf(" %s=%d", b.Name, b.Routed)
		}
		fmt.Printf("%s: %s done; routed%s; fleet placement builds so far: %d\n",
			tag, ack.ID, routed, st.PlacementCache.Builds)
		return ack.ID
	}

	// 1 + 2 + 3: affinity under named identity. Same spec twice → same
	// named backend (the job id says which), one build total.
	run("first submission ")
	id2 := run("second submission") // same backend, zero new builds

	// 6: the traced submission's span timeline, read back through the
	// gateway — byte-for-byte what the owning backend recorded.
	tr, err := c.Trace(ctx, id2)
	if err != nil {
		log.Fatal(err)
	}
	var simSecs float64
	sims := 0
	for _, sp := range tr.Spans {
		if sp.Name == "sim" {
			simSecs += sp.Seconds
			sims++
		}
	}
	fmt.Printf("trace %s: %d spans over %.3fs wall; %d sim spans totalling %.3fs\n",
		tr.TraceID, len(tr.Spans), tr.WallSeconds, sims, simSecs)

	// 4: failover. Kill the backend holding the warm cache; the next
	// submission re-routes to the survivor and still completes (it
	// rebuilds the placement there — one more fleet build, not an error).
	killed := -1
	for i, b := range fleetStats().Backends {
		if b.Routed > 0 {
			killed = i
		}
	}
	fmt.Printf("killing routed backend node-%d...\n", killed)
	srvs[killed].Close()
	cores[killed].Close()
	time.Sleep(600 * time.Millisecond) // a few probe rounds: prober ejects it
	run("after failover   ")

	// 5: the hardening counters (all zero here — nothing was saturated
	// or throttled — but this is what to alert on in production).
	st := fleetStats()
	fmt.Printf("gateway counters: spilled=%d throttled_rate=%d throttled_inflight=%d rerouted=%d\n",
		st.Gateway.Spilled, st.Gateway.ThrottledRate, st.Gateway.ThrottledInflight, st.Gateway.Rerouted)
}
