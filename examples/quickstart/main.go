// Quickstart: generate a small synthetic state, distribute it with the
// graph partitioner, simulate a flu season, and print the epidemic curve.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	episim "repro"
)

func main() {
	// Wyoming at 1:100 scale: ~5,000 people, ~1,400 locations.
	pop, err := episim.GenerateState("WY", 100, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s: %d people, %d locations, %d daily visits\n",
		pop.Name, pop.NumPersons(), pop.NumLocations(), pop.NumVisits())

	// GP-splitLoc: the paper's best data distribution — split heavy
	// locations, then partition the person-location graph.
	pl, err := episim.BuildPlacement(pop, episim.PlacementOptions{
		Strategy: episim.GP,
		SplitLoc: true,
		Ranks:    8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placement %s: edge cut %d, location balance %.2f\n",
		pl.Label, pl.Quality.EdgeCut, pl.Quality.MaxOverAvg[1])

	res, err := episim.Run(pl, episim.SimConfig{
		Days:              120,
		Seed:              42,
		InitialInfections: 10,
		AggBufferSize:     64,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("attack rate %.1f%% (%d of %d infected)\n\n",
		res.AttackRate*100, res.TotalInfections, pop.NumPersons())

	// ASCII epidemic curve, 7-day buckets.
	curve := res.EpiCurve()
	var peak int64 = 1
	for _, v := range curve {
		if v > peak {
			peak = v
		}
	}
	fmt.Println("new infections per week:")
	for week := 0; week*7 < len(curve); week++ {
		var sum int64
		for d := week * 7; d < len(curve) && d < (week+1)*7; d++ {
			sum += curve[d]
		}
		bar := int(sum * 40 / (peak * 7))
		fmt.Printf("w%02d %6d %s\n", week+1, sum, strings.Repeat("#", bar))
	}
}
