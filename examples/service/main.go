// Example service boots an in-process episimd, then drives it through
// the Go client package the way an external consumer would over the
// network: submit two sweeps that share a placement (one build, proven
// by the cache accounting), stream the first sweep's per-cell aggregates
// as they finalize, then read the daemon's service metrics.
//
// Run with:
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	episim "repro"
	"repro/client"
	"repro/internal/server"
)

func main() {
	// Boot the daemon on a loopback port; in production this is
	// `episimd -addr :8321` in its own process (add -cache-dir for a
	// persistent placement cache and restart-durable results).
	core, err := server.New(server.Config{Workers: 8, MaxActive: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer core.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: core.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("episimd listening on", base)

	c := client.New(base)
	ctx := context.Background()

	// Two submissions over the same (population, placement): the daemon's
	// process-lifetime cache builds the placement once and both sweeps
	// share it.
	spec := func(scenario string) *episim.SweepSpec {
		s := &episim.SweepSpec{
			Populations: []episim.SweepPopulation{{State: "WY", Scale: 600}},
			Placements:  []episim.SweepPlacement{{Strategy: "GP", SplitLoc: true, Ranks: 8}},
			Scenarios: []episim.SweepScenario{
				{Name: "baseline"},
				{Name: scenario,
					Text: "when prevalence(symptomatic) > 0.005 and day >= 3 { close school for 14 }"},
			},
			Replicates:        4,
			Days:              40,
			Seed:              7,
			InitialInfections: 5,
			AggBufferSize:     64,
		}
		s.Normalize()
		return s
	}
	ack1, err := c.Submit(ctx, spec("close-early"))
	if err != nil {
		log.Fatal(err)
	}
	ack2, err := c.Submit(ctx, spec("close-late"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (%d cells) and %s (%d cells)\n",
		ack1.ID, ack1.Cells, ack2.ID, ack2.Cells)

	// Stream the first sweep: cells arrive the moment they finalize,
	// not when the whole grid completes.
	err = c.Stream(ctx, ack1.ID, 0, func(ev client.Event) error {
		switch ev.Type {
		case "cell":
			fmt.Printf("  cell %d %-40s attack=%.4f peak@day %.0f\n",
				ev.Cell.Index, ev.Cell.Label, ev.Cell.AttackRate.Mean, ev.Cell.PeakDay.Mean)
		default:
			fmt.Printf("  stream %s: %d/%d cells\n", ev.Type, ev.Job.CellsDone, ev.Job.Cells)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Wait for the second sweep too (its terminal event ends the
	// stream), then pull both results and prove the single shared build
	// via the daemon's cache counters: two sweeps, one placement build.
	_ = c.Stream(ctx, ack2.ID, 0, func(client.Event) error { return nil })

	for _, id := range []string{ack1.ID, ack2.ID} {
		res, err := c.Result(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result %s: %d cells aggregated\n", id, len(res.Cells))
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placement builds across both sweeps: %d (cache shared one build)\n",
		stats.PlacementCache.Builds)
	fmt.Printf("daemon stats: %d sweeps, %d cells streamed (%.1f cells/sec), placement cache %d hits / %d misses\n",
		stats.SweepsTotal, stats.CellsStreamed, stats.CellsPerSec,
		stats.PlacementCache.Hits, stats.PlacementCache.Misses)
	if stats.PlacementStore != nil {
		fmt.Printf("placement store: %d artifacts, %d bytes\n",
			stats.PlacementStore.Files, stats.PlacementStore.Bytes)
	}
}
