package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	episim "repro"
)

// sseEvent renders one server-side SSE frame the way episimd does.
func sseEvent(t *testing.T, ev Event) string {
	t.Helper()
	payload, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, payload)
}

// fromParam parses the resume point of an incoming stream request.
func fromParam(r *http.Request) int {
	n, _ := strconv.Atoi(r.URL.Query().Get("from"))
	return n
}

// TestStreamReconnectsAfterConnectionReset: a mid-stream TCP reset (a
// dying proxy, a restarted gateway) must not surface an error or lose
// events — the client resumes from last-seen+1 and the caller observes
// one gapless sequence.
func TestStreamReconnectsAfterConnectionReset(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		if n == 1 {
			if from := fromParam(r); from != 0 {
				t.Errorf("first connect from=%d, want 0", from)
			}
			// Two events, then an abrupt reset (SO_LINGER 0 → RST): the
			// client's scanner sees a transport error, not a clean end.
			fmt.Fprint(w, sseEvent(t, Event{Seq: 0, Type: "cell"}))
			fmt.Fprint(w, sseEvent(t, Event{Seq: 1, Type: "cell"}))
			w.(http.Flusher).Flush()
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Error(err)
				return
			}
			if tcp, ok := conn.(*net.TCPConn); ok {
				tcp.SetLinger(0)
			}
			conn.Close()
			return
		}
		// Reconnect: must resume exactly past the last delivered event.
		if from := fromParam(r); from != 2 {
			t.Errorf("reconnect from=%d, want 2", from)
		}
		if lei := r.Header.Get("Last-Event-ID"); lei != "1" {
			t.Errorf("reconnect Last-Event-ID=%q, want 1", lei)
		}
		fmt.Fprint(w, sseEvent(t, Event{Seq: 2, Type: "cell"}))
		fmt.Fprint(w, sseEvent(t, Event{Seq: 3, Type: "done", Job: &JobStatus{ID: "sw-000001", State: StateDone}}))
	}))
	defer ts.Close()

	var seqs []int
	err := New(ts.URL).Stream(context.Background(), "sw-000001", 0, func(ev Event) error {
		seqs = append(seqs, ev.Seq)
		return nil
	})
	if err != nil {
		t.Fatalf("Stream over a reset connection: %v", err)
	}
	if want := []int{0, 1, 2, 3}; fmt.Sprint(seqs) != fmt.Sprint(want) {
		t.Fatalf("delivered seqs %v, want %v", seqs, want)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d connections, want 2", got)
	}
}

// TestStreamRetriesServerErrors: a 5xx (a gateway whose backend is mid-
// failover) is transient; the client backs off and retries. A 4xx is
// permanent and fails immediately.
func TestStreamRetriesServerErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"backend draining"}`, http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, sseEvent(t, Event{Seq: 0, Type: "done", Job: &JobStatus{ID: "sw-000001", State: StateDone}}))
	}))
	defer ts.Close()

	start := time.Now()
	if err := New(ts.URL).Stream(context.Background(), "sw-000001", 0, func(Event) error { return nil }); err != nil {
		t.Fatalf("Stream across a 502: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d connections, want 2", calls.Load())
	}
	if time.Since(start) < 200*time.Millisecond {
		t.Fatal("retry happened without backoff")
	}

	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown sweep"}`, http.StatusNotFound)
	}))
	defer notFound.Close()
	err := New(notFound.URL).Stream(context.Background(), "sw-999999", 0, func(Event) error { return nil })
	var ae *apiError
	if !errors.As(err, &ae) || ae.status != http.StatusNotFound {
		t.Fatalf("Stream against 404 = %v, want permanent apiError", err)
	}
}

// TestStreamCallbackErrorIsFatal: an error from the caller's fn ends the
// stream at once — it must never be retried (the callback already saw
// the event; replaying it would double-process).
func TestStreamCallbackErrorIsFatal(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, sseEvent(t, Event{Seq: 0, Type: "cell"}))
		fmt.Fprint(w, sseEvent(t, Event{Seq: 1, Type: "done", Job: &JobStatus{ID: "sw-000001", State: StateDone}}))
	}))
	defer ts.Close()

	boom := errors.New("boom")
	err := New(ts.URL).Stream(context.Background(), "sw-000001", 0, func(Event) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Stream returned %v, want the callback's error", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("callback error triggered %d connections, want 1", calls.Load())
	}
}

// TestStreamGivesUpWithoutProgress: endless transient failures with no
// forward progress eventually fail instead of spinning forever.
func TestStreamGivesUpWithoutProgress(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"always down"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	err := New(ts.URL).Stream(context.Background(), "sw-000001", 0, func(Event) error { return nil })
	if err == nil {
		t.Fatal("Stream against a permanently-5xx server must eventually fail")
	}
}

// TestSubmitHonorsRetryAfter: a 429 with Retry-After advice is waited
// out and retried transparently; the caller sees one successful ack.
func TestSubmitHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("X-Episim-Client"); got != "tenant-t" {
			t.Errorf("X-Episim-Client = %q, want tenant-t", got)
		}
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("X-Episim-Retry-After-Ms", "20")
			http.Error(w, `{"error":"throttled"}`, http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(SubmitReply{ID: "sw-000001", Cells: 1, Simulations: 1})
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.ClientID = "tenant-t"
	ack, err := c.Submit(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ack.ID != "sw-000001" || calls.Load() != 3 {
		t.Fatalf("ack %+v after %d calls, want sw-000001 on the 3rd", ack, calls.Load())
	}
}

// TestSubmitSurfacesExhaustedThrottle: when the server never relents,
// Submit stops retrying and surfaces the 429 with its advice intact for
// callers running their own backoff.
func TestSubmitSurfacesExhaustedThrottle(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("X-Episim-Retry-After-Ms", "5")
		http.Error(w, `{"error":"throttled"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	_, err := New(ts.URL).Submit(context.Background(), nil)
	if err == nil {
		t.Fatal("Submit against a permanent 429 must fail")
	}
	if wait, ok := RetryAfter(err); !ok || wait != 5*time.Millisecond {
		t.Fatalf("RetryAfter(err) = %v %v, want 5ms true", wait, ok)
	}
	if calls.Load() != 5 { // initial attempt + maxThrottleRetries
		t.Fatalf("made %d attempts, want 5", calls.Load())
	}
}

// TestSubmitNoRetryWithoutAdvice: a 429 carrying no Retry-After is not
// blindly retried — the server gave no schedule, hammering it is wrong.
func TestSubmitNoRetryWithoutAdvice(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"throttled"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	if _, err := New(ts.URL).Submit(context.Background(), nil); err == nil {
		t.Fatal("Submit must surface the 429")
	}
	if calls.Load() != 1 {
		t.Fatalf("made %d attempts, want 1", calls.Load())
	}
}

// TestSubmitWithOptions: SubmitWith consolidates what previously took
// mutating the Client and the spec by hand — identity headers override
// per call, spec knobs (kernel, intervention axis) land in the wire
// body, and the caller's spec is never mutated.
func TestSubmitWithOptions(t *testing.T) {
	var gotClient, gotTrace atomic.Value
	var gotBody atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotClient.Store(r.Header.Get("X-Episim-Client"))
		gotTrace.Store(r.Header.Get(TraceHeader))
		var spec struct {
			Kernel        string `json:"kernel"`
			ForkDay       int    `json:"fork_day"`
			Interventions []struct {
				Name string `json:"name"`
			} `json:"interventions"`
		}
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			t.Errorf("decode submitted spec: %v", err)
		}
		gotBody.Store(spec)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(SubmitReply{ID: "sw-000002", SpecVersion: 2})
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.ClientID = "client-level"
	spec := &episim.SweepSpec{
		Populations: []episim.SweepPopulation{{Name: "p", People: 10, Locations: 2}},
		Placements:  []episim.SweepPlacement{{Strategy: "RR", Ranks: 1}},
		Replicates:  1,
		Days:        9,
		Seed:        1,
	}
	ack, err := c.SubmitWith(context.Background(), spec, SubmitOptions{
		ClientID:      "per-call",
		TraceID:       "trace-42",
		Kernel:        "auto",
		Interventions: []episim.SweepIntervention{{Name: "baseline"}, {Name: "b1"}},
		ForkDay:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.SpecVersion != 2 {
		t.Fatalf("ack spec_version = %d, want 2", ack.SpecVersion)
	}
	if got := gotClient.Load(); got != "per-call" {
		t.Fatalf("X-Episim-Client = %q, want per-call override", got)
	}
	if got := gotTrace.Load(); got != "trace-42" {
		t.Fatalf("trace header = %q, want trace-42", got)
	}
	sent := gotBody.Load().(struct {
		Kernel        string `json:"kernel"`
		ForkDay       int    `json:"fork_day"`
		Interventions []struct {
			Name string `json:"name"`
		} `json:"interventions"`
	})
	if sent.Kernel != "auto" || sent.ForkDay != 4 || len(sent.Interventions) != 2 {
		t.Fatalf("submitted spec = %+v, want kernel auto, fork day 4, 2 branches", sent)
	}
	if spec.Kernel != "" || spec.ForkDay != 0 || spec.Interventions != nil {
		t.Fatal("SubmitWith mutated the caller's spec")
	}
	if c.ClientID != "client-level" || c.TraceID != "" {
		t.Fatal("SubmitWith mutated the Client")
	}
}

// TestErrorSentinelMatching pins the errors.Is contract: 429 matches
// ErrThrottled, 404 matches ErrNotFound, and neither matches the other.
func TestErrorSentinelMatching(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"throttled"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	_, err := New(ts.URL).Submit(context.Background(), nil)
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("429 error %v does not match ErrThrottled", err)
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("429 error %v wrongly matches ErrNotFound", err)
	}

	nf := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown sweep"}`, http.StatusNotFound)
	}))
	defer nf.Close()
	if _, err := New(nf.URL).Status(context.Background(), "sw-000099"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("404 error %v does not match ErrNotFound", err)
	}
}
