package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// sseEvent renders one server-side SSE frame the way episimd does.
func sseEvent(t *testing.T, ev Event) string {
	t.Helper()
	payload, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, payload)
}

// fromParam parses the resume point of an incoming stream request.
func fromParam(r *http.Request) int {
	n, _ := strconv.Atoi(r.URL.Query().Get("from"))
	return n
}

// TestStreamReconnectsAfterConnectionReset: a mid-stream TCP reset (a
// dying proxy, a restarted gateway) must not surface an error or lose
// events — the client resumes from last-seen+1 and the caller observes
// one gapless sequence.
func TestStreamReconnectsAfterConnectionReset(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		if n == 1 {
			if from := fromParam(r); from != 0 {
				t.Errorf("first connect from=%d, want 0", from)
			}
			// Two events, then an abrupt reset (SO_LINGER 0 → RST): the
			// client's scanner sees a transport error, not a clean end.
			fmt.Fprint(w, sseEvent(t, Event{Seq: 0, Type: "cell"}))
			fmt.Fprint(w, sseEvent(t, Event{Seq: 1, Type: "cell"}))
			w.(http.Flusher).Flush()
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Error(err)
				return
			}
			if tcp, ok := conn.(*net.TCPConn); ok {
				tcp.SetLinger(0)
			}
			conn.Close()
			return
		}
		// Reconnect: must resume exactly past the last delivered event.
		if from := fromParam(r); from != 2 {
			t.Errorf("reconnect from=%d, want 2", from)
		}
		if lei := r.Header.Get("Last-Event-ID"); lei != "1" {
			t.Errorf("reconnect Last-Event-ID=%q, want 1", lei)
		}
		fmt.Fprint(w, sseEvent(t, Event{Seq: 2, Type: "cell"}))
		fmt.Fprint(w, sseEvent(t, Event{Seq: 3, Type: "done", Job: &JobStatus{ID: "sw-000001", State: StateDone}}))
	}))
	defer ts.Close()

	var seqs []int
	err := New(ts.URL).Stream(context.Background(), "sw-000001", 0, func(ev Event) error {
		seqs = append(seqs, ev.Seq)
		return nil
	})
	if err != nil {
		t.Fatalf("Stream over a reset connection: %v", err)
	}
	if want := []int{0, 1, 2, 3}; fmt.Sprint(seqs) != fmt.Sprint(want) {
		t.Fatalf("delivered seqs %v, want %v", seqs, want)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d connections, want 2", got)
	}
}

// TestStreamRetriesServerErrors: a 5xx (a gateway whose backend is mid-
// failover) is transient; the client backs off and retries. A 4xx is
// permanent and fails immediately.
func TestStreamRetriesServerErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"backend draining"}`, http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, sseEvent(t, Event{Seq: 0, Type: "done", Job: &JobStatus{ID: "sw-000001", State: StateDone}}))
	}))
	defer ts.Close()

	start := time.Now()
	if err := New(ts.URL).Stream(context.Background(), "sw-000001", 0, func(Event) error { return nil }); err != nil {
		t.Fatalf("Stream across a 502: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d connections, want 2", calls.Load())
	}
	if time.Since(start) < 200*time.Millisecond {
		t.Fatal("retry happened without backoff")
	}

	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown sweep"}`, http.StatusNotFound)
	}))
	defer notFound.Close()
	err := New(notFound.URL).Stream(context.Background(), "sw-999999", 0, func(Event) error { return nil })
	var ae *apiError
	if !errors.As(err, &ae) || ae.status != http.StatusNotFound {
		t.Fatalf("Stream against 404 = %v, want permanent apiError", err)
	}
}

// TestStreamCallbackErrorIsFatal: an error from the caller's fn ends the
// stream at once — it must never be retried (the callback already saw
// the event; replaying it would double-process).
func TestStreamCallbackErrorIsFatal(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, sseEvent(t, Event{Seq: 0, Type: "cell"}))
		fmt.Fprint(w, sseEvent(t, Event{Seq: 1, Type: "done", Job: &JobStatus{ID: "sw-000001", State: StateDone}}))
	}))
	defer ts.Close()

	boom := errors.New("boom")
	err := New(ts.URL).Stream(context.Background(), "sw-000001", 0, func(Event) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Stream returned %v, want the callback's error", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("callback error triggered %d connections, want 1", calls.Load())
	}
}

// TestStreamGivesUpWithoutProgress: endless transient failures with no
// forward progress eventually fail instead of spinning forever.
func TestStreamGivesUpWithoutProgress(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"always down"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	err := New(ts.URL).Stream(context.Background(), "sw-000001", 0, func(Event) error { return nil })
	if err == nil {
		t.Fatal("Stream against a permanently-5xx server must eventually fail")
	}
}

// TestSubmitHonorsRetryAfter: a 429 with Retry-After advice is waited
// out and retried transparently; the caller sees one successful ack.
func TestSubmitHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("X-Episim-Client"); got != "tenant-t" {
			t.Errorf("X-Episim-Client = %q, want tenant-t", got)
		}
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("X-Episim-Retry-After-Ms", "20")
			http.Error(w, `{"error":"throttled"}`, http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(SubmitReply{ID: "sw-000001", Cells: 1, Simulations: 1})
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.ClientID = "tenant-t"
	ack, err := c.Submit(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ack.ID != "sw-000001" || calls.Load() != 3 {
		t.Fatalf("ack %+v after %d calls, want sw-000001 on the 3rd", ack, calls.Load())
	}
}

// TestSubmitSurfacesExhaustedThrottle: when the server never relents,
// Submit stops retrying and surfaces the 429 with its advice intact for
// callers running their own backoff.
func TestSubmitSurfacesExhaustedThrottle(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("X-Episim-Retry-After-Ms", "5")
		http.Error(w, `{"error":"throttled"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	_, err := New(ts.URL).Submit(context.Background(), nil)
	if err == nil {
		t.Fatal("Submit against a permanent 429 must fail")
	}
	if wait, ok := RetryAfter(err); !ok || wait != 5*time.Millisecond {
		t.Fatalf("RetryAfter(err) = %v %v, want 5ms true", wait, ok)
	}
	if calls.Load() != 5 { // initial attempt + maxThrottleRetries
		t.Fatalf("made %d attempts, want 5", calls.Load())
	}
}

// TestSubmitNoRetryWithoutAdvice: a 429 carrying no Retry-After is not
// blindly retried — the server gave no schedule, hammering it is wrong.
func TestSubmitNoRetryWithoutAdvice(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"throttled"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	if _, err := New(ts.URL).Submit(context.Background(), nil); err == nil {
		t.Fatal("Submit must surface the 429")
	}
	if calls.Load() != 1 {
		t.Fatalf("made %d attempts, want 1", calls.Load())
	}
}
