// Package client is the Go client for the episimd sweep service: submit
// declarative SweepSpecs, watch their status, stream per-cell aggregates
// as they finalize (SSE), fetch full results and cancel runs.
//
// The wire types in this package (JobStatus, Event, ...) are the
// service's HTTP contract; episimd's handlers marshal exactly these
// structs, so the two sides cannot drift.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	episim "repro"
	"repro/internal/obs"
)

// TraceHeader is the X-Episim-Trace-Id header: set it on a submission
// to choose the sweep's trace id; gateway and daemon echo it back (and
// generate an id when absent).
const TraceHeader = obs.TraceHeader

// JobState is the lifecycle state of a submitted sweep.
type JobState string

// Sweep job lifecycle: Queued → Running → one of Done / Failed /
// Canceled.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is one sweep job's snapshot.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Error summarizes the failure when State is "failed".
	Error string `json:"error,omitempty"`
	// Cells and Replicates are the sweep's grid shape; CellsDone counts
	// finalized cells (streamed or failed) so far.
	Cells      int `json:"cells"`
	CellsDone  int `json:"cells_done"`
	Replicates int `json:"replicates"`

	Created time.Time `json:"created"`
	// Started and Finished are nil until the job reaches those states
	// (omitempty cannot elide a zero time.Time, a pointer can).
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`

	// TraceID correlates this job across log lines, the trace timeline
	// and proxied hops (the X-Episim-Trace-Id header). It is stamped on
	// the persisted job record, so it survives eviction and restarts.
	TraceID string `json:"trace_id,omitempty"`

	// SpecVersion is the submitted spec's schema version: 1 for the
	// original grid, 2 when it carries an intervention axis (fork-point
	// counterfactual sweeps). Persisted with the job record, so a
	// rehydrated job still reports what it was submitted as. Omitted by
	// daemons predating the field — treat absent as 1.
	SpecVersion int `json:"spec_version,omitempty"`
}

// SubmitReply acknowledges a submission.
type SubmitReply struct {
	ID          string `json:"id"`
	Cells       int    `json:"cells"`
	Simulations int    `json:"simulations"`
	// TraceID is the trace id in effect for this sweep: the one the
	// client supplied via X-Episim-Trace-Id, else server-generated.
	TraceID string `json:"trace_id,omitempty"`
	// SpecVersion echoes the accepted spec's schema version (see
	// JobStatus.SpecVersion); absent from daemons predating the field.
	SpecVersion int `json:"spec_version,omitempty"`
}

// TraceSpan is one named, timed stage of a sweep's execution.
type TraceSpan = obs.Span

// TraceReply is the GET /v1/sweeps/{id}/trace timeline: where the wall
// clock went between submission and completion. Spans are recorded
// in-memory per job; a job rehydrated from disk after a restart keeps
// its TraceID but reports no spans.
type TraceReply struct {
	// ID is the backend-local job id. Deliberately NOT rewritten by the
	// gateway: the gateway relays trace replies verbatim, so the bytes
	// fetched through it are identical to the owning backend's.
	ID      string   `json:"id"`
	TraceID string   `json:"trace_id,omitempty"`
	State   JobState `json:"state"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// WallSeconds is created→finished (or →now while running) — the
	// denominator for span coverage.
	WallSeconds float64 `json:"wall_seconds"`

	Spans []TraceSpan `json:"spans"`
	// SpansDropped counts spans past the per-job retention cap (huge
	// grids); histograms still observed them.
	SpansDropped int `json:"spans_dropped,omitempty"`
}

// Event is one message of a sweep's event stream, delivered over SSE or
// NDJSON. Cell events carry the finalized aggregate; terminal events
// ("done", "error", "canceled") carry the job's final status and end the
// stream.
type Event struct {
	Seq  int                     `json:"seq"`
	Type string                  `json:"type"` // "cell", "done", "error", "canceled"
	Cell *episim.SweepCellResult `json:"cell,omitempty"`
	Job  *JobStatus              `json:"job,omitempty"`
}

// StatsReply is the daemon's /v1/stats snapshot.
type StatsReply struct {
	UptimeSec    float64 `json:"uptime_sec"`
	QueueDepth   int     `json:"queue_depth"`
	ActiveSweeps int     `json:"active_sweeps"`

	SweepsTotal    int `json:"sweeps_total"`
	SweepsDone     int `json:"sweeps_done"`
	SweepsFailed   int `json:"sweeps_failed"`
	SweepsCanceled int `json:"sweeps_canceled"`
	// SweepsEvicted counts finished sweeps dropped from the memory index
	// by the retention cap or TTL; with a cache dir they remain readable
	// from the disk store (SweepsTotal covers the memory index only).
	SweepsEvicted int64 `json:"sweeps_evicted"`

	CellsStreamed int64   `json:"cells_streamed"`
	CellsPerSec   float64 `json:"cells_per_sec"`

	// SLO-plane counters: submission and event-delivery outcomes, span
	// drops past the per-job retention cap, and watchdog profile
	// captures. They ride /v1/stats (like the histograms below) so a
	// fronting gateway can merge them fleet-wide and feed its own
	// metrics-history ring from one fan-out.
	SubmitsTotal      int64 `json:"submits_total"`
	SubmitErrors      int64 `json:"submit_errors"`
	EventsSent        int64 `json:"events_sent"`
	EventsSendErrors  int64 `json:"events_send_errors"`
	TraceDroppedSpans int64 `json:"trace_dropped_spans"`
	ProfileCaptures   int64 `json:"profile_captures"`

	// KernelDays counts simulated days by executing kernel ("dense",
	// "active", "event") across all finalized cells; empty until a sweep
	// selects a non-default kernel.
	KernelDays map[string]int64 `json:"kernel_days,omitempty"`

	// Cache stats carry both tiers: Hits/Misses/... are the in-memory
	// LRU, Disk* the persistent artifact tier, and Builds the actual
	// build executions either tier failed to absorb.
	PopulationCache episim.SweepCacheStats `json:"population_cache"`
	PlacementCache  episim.SweepCacheStats `json:"placement_cache"`
	// CheckpointCache covers fork-point sim-state checkpoints (version 2
	// sweeps); Builds counts prefix executions that no tier absorbed.
	CheckpointCache episim.SweepCacheStats `json:"checkpoint_cache"`

	// CheckpointRestores / CheckpointBytes count branch resumes from a
	// checkpoint and the estimated in-memory bytes of every checkpoint
	// built by this daemon — the fork economics in two numbers.
	CheckpointRestores int64 `json:"checkpoint_restores"`
	CheckpointBytes    int64 `json:"checkpoint_bytes"`

	// Store sizes are present only when the daemon runs with -cache-dir.
	PopulationStore *episim.SweepStoreStats `json:"population_store,omitempty"`
	PlacementStore  *episim.SweepStoreStats `json:"placement_store,omitempty"`
	ResultStore     *episim.SweepStoreStats `json:"result_store,omitempty"`
	CheckpointStore *episim.SweepStoreStats `json:"checkpoint_store,omitempty"`

	// Histograms are the daemon's latency distributions (submit, queue
	// wait, placement build, per-replicate sim, result persist). They
	// ride /v1/stats so a fronting gateway can merge backend histograms
	// bucket-wise into fleet-wide distributions on its own /metrics.
	Histograms []obs.HistogramSnapshot `json:"histograms,omitempty"`
}

// SLOReply is the GET /v1/slo snapshot: every configured SLO evaluated
// from the instance's metrics-history ring into multi-window error
// rates and error-budget burn rates.
type SLOReply struct {
	// Instance is the reporting daemon's name; "fleet" from a gateway.
	Instance string `json:"instance,omitempty"`
	// Stale marks evaluations computed over degraded data: a wedged
	// collection ring, or (from a gateway) last-known backend snapshots.
	Stale bool            `json:"stale,omitempty"`
	SLOs  []obs.SLOStatus `json:"slos"`
}

// UsageReply is the GET /v1/usage per-client accounting ledger, biggest
// sim-seconds consumers first. From a gateway the rows are merged
// across every reachable backend.
type UsageReply struct {
	Instance string            `json:"instance,omitempty"`
	Clients  []obs.ClientUsage `json:"clients"`
}

// HistoryReply is the GET /v1/metrics/history ring snapshot: the
// instance's self-scraped time series, oldest first, plus windowed
// rates over the ring so dashboards need not re-derive them.
type HistoryReply struct {
	Instance    string             `json:"instance,omitempty"`
	IntervalSec float64            `json:"interval_sec"`
	Points      []obs.HistoryPoint `json:"points"`
	// Windows holds the precomputed deltas/rates for the default SLO
	// windows, keyed by window label ("5m", "1h").
	Windows map[string]obs.WindowStats `json:"windows,omitempty"`
}

// HealthReply is the daemon's /healthz readiness snapshot. A fronting
// gateway (episim-gw) probes this endpoint to decide routing; the daemon
// replies 503 with Status "degraded" when it cannot take work (e.g. its
// cache dir stopped being writable).
type HealthReply struct {
	Status string `json:"status"` // "ok" or "degraded"
	// Instance is the daemon's configured name (episimd -name). A
	// fronting gateway (episim-gw) adopts it as the backend's routing
	// identity: job ids embed it and HRW placement hashes it, so a fleet
	// can be reordered or readdressed without breaking either.
	Instance     string  `json:"instance,omitempty"`
	UptimeSec    float64 `json:"uptime_sec"`
	QueueDepth   int     `json:"queue_depth"`
	ActiveSweeps int     `json:"active_sweeps"`
	// MaxActive is the daemon's concurrent-sweep bound; with QueueDepth
	// it tells a load-aware router how saturated this instance is.
	MaxActive int `json:"max_active,omitempty"`
	// CacheDir and CacheDirWritable are present only for durable daemons;
	// Error carries the probe failure when writability is lost.
	CacheDir         string `json:"cache_dir,omitempty"`
	CacheDirWritable *bool  `json:"cache_dir_writable,omitempty"`
	Error            string `json:"error,omitempty"`
}

// ValidateInstanceName checks a daemon instance name against the rules
// both episimd (-name flag) and episim-gw (name discovery) enforce —
// one validator, so the two ends cannot drift: a gateway embeds the
// name in job ids ("<name>-sw-000001"), so "-sw-" would make ids
// ambiguous, and whitespace, commas or slashes break headers, URLs and
// the -backends list syntax. Empty names are valid (anonymous daemon).
func ValidateInstanceName(name string) error {
	if strings.Contains(name, "-sw-") {
		return fmt.Errorf("instance name %q must not contain \"-sw-\" (reserved as the job-id separator)", name)
	}
	// Allowlist, not denylist: the name is embedded raw in request paths
	// (/v1/sweeps/<name>-sw-000001), headers and the -backends flag, so
	// anything beyond hostname-safe characters ('?', '#', '%', ...)
	// would boot a daemon whose job ids cannot be fetched.
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '.' || c == '_' || c == '-' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return fmt.Errorf("instance name %q may only contain letters, digits, '.', '_' and '-'", name)
		}
	}
	if IsPositionalIdentity(name) {
		return fmt.Errorf("instance name %q is reserved (the \"b<number>\" shape is the gateway's positional fallback identity)", name)
	}
	return nil
}

// IsPositionalIdentity reports whether name has the gateway's positional
// identity shape ("b0", "b1", ... — 'b' followed by digits only). The
// whole shape is reserved — not just names matching a backend's current
// slot — because fleets grow and lists reorder: a daemon named "b2"
// would have its ids silently re-resolved by position after any
// reshuffle. ValidateInstanceName refuses it and the gateway's id
// resolver positional-parses exactly it; sharing one predicate keeps
// the two ends from drifting.
func IsPositionalIdentity(name string) bool {
	if len(name) < 2 || name[0] != 'b' {
		return false
	}
	for i := 1; i < len(name); i++ {
		if name[i] < '0' || name[i] > '9' {
			return false
		}
	}
	return true
}

// Client talks to one episimd instance.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8321".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Streams run as long as
	// the sweep does, so it must not set a global Timeout.
	HTTPClient *http.Client
	// ClientID, when set, is sent as the X-Episim-Client header on every
	// request. A gateway (episim-gw) keys per-client admission quotas on
	// it; unset, the gateway falls back to the remote address, which
	// lumps every caller behind one NAT into one quota.
	ClientID string
	// TraceID, when set, is sent as the X-Episim-Trace-Id header on every
	// request: submissions adopt it as their trace id (see Trace), tying
	// the sweep's span timeline and server log lines to the caller's own
	// correlation id. Unset, the server mints one per submission — echoed
	// in SubmitReply.TraceID.
	TraceID string
}

// New builds a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON reply into out (nil = discard).
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.ClientID != "" {
		req.Header.Set("X-Episim-Client", c.ClientID)
	}
	if c.TraceID != "" {
		req.Header.Set(TraceHeader, c.TraceID)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Typed error sentinels for the failures callers routinely branch on.
// Match with errors.Is — the concrete error keeps the server's full
// message and status:
//
//	if errors.Is(err, client.ErrThrottled) { wait, _ := client.RetryAfter(err); ... }
//	if errors.Is(err, client.ErrNotFound) { ... }
//
// They replace matching on error strings, which drift with server
// wording.
var (
	// ErrThrottled marks an HTTP 429 admission-control rejection.
	ErrThrottled = errors.New("episimd: throttled")
	// ErrNotFound marks an HTTP 404 — an unknown sweep id, or an id whose
	// record aged out of both the memory index and the disk store.
	ErrNotFound = errors.New("episimd: not found")
)

// apiError is a non-2xx reply; it keeps the status code so retry logic
// can distinguish server-side failures (5xx, possibly transient — a
// gateway mid-failover answers 502) from permanent client errors (4xx),
// and the advised Retry-After wait for 429 throttles.
type apiError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

// Is maps the reply's status onto the package sentinels so callers can
// use errors.Is without knowing the concrete type.
func (e *apiError) Is(target error) bool {
	switch target {
	case ErrThrottled:
		return e.status == http.StatusTooManyRequests
	case ErrNotFound:
		return e.status == http.StatusNotFound
	}
	return false
}

// RetryAfter extracts the server-advised wait from a throttled (429)
// submission error, for callers implementing their own backoff instead
// of relying on Submit's built-in honoring. ok is false when err carries
// no retry advice.
func RetryAfter(err error) (wait time.Duration, ok bool) {
	var ae *apiError
	if errors.As(err, &ae) && ae.retryAfter > 0 {
		return ae.retryAfter, true
	}
	return 0, false
}

// decodeError turns a non-2xx reply into an error carrying the server's
// message, status, and (on 429) its Retry-After advice. The gateway also
// emits a millisecond-precision X-Episim-Retry-After-Ms header — the
// standard Retry-After only has whole-second resolution — which is
// preferred when present.
func decodeError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var retryAfter time.Duration
	if ms := resp.Header.Get("X-Episim-Retry-After-Ms"); ms != "" {
		if n, err := strconv.ParseInt(ms, 10, 64); err == nil && n > 0 {
			retryAfter = time.Duration(n) * time.Millisecond
		}
	}
	if retryAfter == 0 {
		if s := resp.Header.Get("Retry-After"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				retryAfter = time.Duration(n) * time.Second
			}
		}
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return &apiError{resp.StatusCode,
			fmt.Sprintf("episimd: %s (HTTP %d)", e.Error, resp.StatusCode), retryAfter}
	}
	return &apiError{resp.StatusCode,
		fmt.Sprintf("episimd: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(b))), retryAfter}
}

// SubmitOptions consolidates the per-submission knobs that previously
// had to be smeared across Client fields (ClientID, TraceID) and spec
// mutations (kernel, interventions) before each call. Zero values mean
// "inherit": identity fields fall back to the Client's, spec overrides
// leave the spec untouched.
type SubmitOptions struct {
	// TraceID / ClientID override the Client-level fields for this one
	// submission (X-Episim-Trace-Id / X-Episim-Client headers).
	TraceID  string
	ClientID string

	// Kernel / KernelThreshold override the spec's kernel selection.
	Kernel          string
	KernelThreshold float64

	// Interventions and ForkDay attach a counterfactual branch axis to
	// the spec (making it a version 2 spec): the sweep runs each base
	// cell's prefix once to ForkDay, then forks every intervention branch
	// from that checkpoint.
	Interventions []episim.SweepIntervention
	ForkDay       int
}

// apply folds the options into a shallow copy of spec (nil-safe only
// for callers that validated spec already, as Submit does server-side).
func (o SubmitOptions) apply(spec *episim.SweepSpec) *episim.SweepSpec {
	if o.Kernel == "" && o.KernelThreshold == 0 && len(o.Interventions) == 0 && o.ForkDay == 0 {
		return spec
	}
	s := *spec
	if o.Kernel != "" {
		s.Kernel = o.Kernel
	}
	if o.KernelThreshold != 0 {
		s.KernelThreshold = o.KernelThreshold
	}
	if len(o.Interventions) > 0 {
		s.Interventions = o.Interventions
	}
	if o.ForkDay != 0 {
		s.ForkDay = o.ForkDay
	}
	return &s
}

// Submit enqueues a sweep and returns its acknowledgment.
//
// Submit honors admission control: when a gateway throttles the request
// (HTTP 429 with Retry-After), it waits the advised interval and retries,
// up to maxThrottleRetries times, so well-behaved callers back off
// exactly as the server asks instead of hammering it. A single honored
// wait is capped at maxThrottleWait — advice beyond that (a drained
// quota with a seconds-per-token rate, a hostile server) surfaces as
// the error immediately rather than silently blocking the caller for
// minutes; use RetryAfter on the returned error to schedule a later
// retry. Cancellation via ctx interrupts the wait; a 429 with no
// Retry-After also surfaces immediately (errors.Is(err, ErrThrottled)
// identifies it).
func (c *Client) Submit(ctx context.Context, spec *episim.SweepSpec) (SubmitReply, error) {
	return c.SubmitWith(ctx, spec, SubmitOptions{})
}

// SubmitWith is Submit with per-submission options; see SubmitOptions.
// It shares Submit's throttle-honoring retry loop.
func (c *Client) SubmitWith(ctx context.Context, spec *episim.SweepSpec, opts SubmitOptions) (SubmitReply, error) {
	const (
		maxThrottleRetries = 4
		maxThrottleWait    = 30 * time.Second
	)
	cc := *c
	if opts.ClientID != "" {
		cc.ClientID = opts.ClientID
	}
	if opts.TraceID != "" {
		cc.TraceID = opts.TraceID
	}
	body, err := json.Marshal(opts.apply(spec))
	if err != nil {
		return SubmitReply{}, err
	}
	for attempt := 0; ; attempt++ {
		var ack SubmitReply
		err := cc.do(ctx, http.MethodPost, "/v1/sweeps", bytes.NewReader(body), &ack)
		if err == nil {
			return ack, nil
		}
		var ae *apiError
		if !errors.As(err, &ae) || ae.status != http.StatusTooManyRequests ||
			ae.retryAfter <= 0 || ae.retryAfter > maxThrottleWait ||
			attempt >= maxThrottleRetries {
			return SubmitReply{}, err
		}
		select {
		case <-time.After(ae.retryAfter):
		case <-ctx.Done():
			return SubmitReply{}, ctx.Err()
		}
	}
}

// Status fetches one job's snapshot.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, &st)
	return st, err
}

// List fetches every job the daemon knows, oldest first.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var jobs []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/sweeps", nil, &jobs)
	return jobs, err
}

// Cancel asks the daemon to stop a queued or running sweep.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/sweeps/"+id+"/cancel", nil, nil)
}

// Result fetches a finished sweep's full aggregate (partial when some
// cells failed). The daemon replies 409 while the sweep is still
// queued/running (retry later) and 410 when a canceled or failed run
// produced no aggregate at all (permanent). Results are durable when
// the daemon runs with -cache-dir: they survive memory eviction and
// daemon restarts. Build accounting is not part of the wire result
// (it is execution state; see Stats for cache counters).
func (c *Client) Result(ctx context.Context, id string) (*episim.SweepResult, error) {
	var res episim.SweepResult
	if err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Trace fetches a sweep's span timeline: named, timed stages (queue
// wait, placement build, each replicate's simulation, aggregation,
// result persist) covering the wall clock between submission and
// completion. Available while the sweep runs (partial timeline) and
// after it finishes; a daemon restart keeps the trace id but drops the
// spans (they are in-memory per job).
func (c *Client) Trace(ctx context.Context, id string) (TraceReply, error) {
	var tr TraceReply
	err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id+"/trace", nil, &tr)
	return tr, err
}

// Stats fetches the daemon's service metrics.
func (c *Client) Stats(ctx context.Context) (StatsReply, error) {
	var st StatsReply
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// SLO fetches the instance's error-budget burn snapshot (a gateway
// serves the fleet-merged view under the same shape).
func (c *Client) SLO(ctx context.Context) (SLOReply, error) {
	var s SLOReply
	err := c.do(ctx, http.MethodGet, "/v1/slo", nil, &s)
	return s, err
}

// Usage fetches the per-client usage ledger.
func (c *Client) Usage(ctx context.Context) (UsageReply, error) {
	var u UsageReply
	err := c.do(ctx, http.MethodGet, "/v1/usage", nil, &u)
	return u, err
}

// MetricsHistory fetches the instance's self-scraped metrics ring.
func (c *Client) MetricsHistory(ctx context.Context) (HistoryReply, error) {
	var h HistoryReply
	err := c.do(ctx, http.MethodGet, "/v1/metrics/history", nil, &h)
	return h, err
}

// Health fetches the daemon's readiness snapshot. A degraded daemon
// replies 503, which surfaces as an error here; use the error's message
// for the cause.
func (c *Client) Health(ctx context.Context) (HealthReply, error) {
	var h HealthReply
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// transientErr wraps a failure worth retrying with a resumed stream:
// transport errors (dropped connections, resets) and 5xx replies. The
// daemon retains every event, so resuming at last-seen+1 — the
// Last-Event-ID contract — is lossless.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }

// callbackErr marks an error returned by the caller's fn, which must
// end the stream rather than be retried.
type callbackErr struct{ err error }

func (e *callbackErr) Error() string { return e.err.Error() }
func (e *callbackErr) Unwrap() error { return e.err }

// Stream subscribes to a sweep's event stream from sequence number
// `from` (0 replays everything already finalized, then continues live)
// and invokes fn for every event until a terminal event arrives, fn
// returns an error, or ctx is canceled.
//
// Stream is self-healing: a dropped connection — a slow-subscriber
// disconnect, a proxy cut, a gateway failing over, a 5xx from a backend
// mid-restart — reconnects automatically with backoff and resumes from
// the last seen sequence number (the Last-Event-ID contract; every event
// is retained server-side), so transient disconnects lose no events and
// surface no error. It gives up after repeated attempts with no
// progress; permanent errors (4xx, malformed events, fn failures, ctx
// cancellation) end the stream immediately.
func (c *Client) Stream(ctx context.Context, id string, from int, fn func(Event) error) error {
	const (
		maxErrRetries = 5 // consecutive transient failures without progress
		maxEmptyEnds  = 3 // consecutive clean ends without progress
	)
	errRetries, emptyEnds := 0, 0
	backoff := 250 * time.Millisecond
	for {
		last, terminal, err := c.streamOnce(ctx, id, from, fn)
		if terminal {
			return nil
		}
		if last >= from { // progressed: both give-up counters restart
			from = last + 1
			errRetries, emptyEnds = 0, 0
			backoff = 250 * time.Millisecond
		}
		if err != nil {
			var cb *callbackErr
			if errors.As(err, &cb) {
				return cb.err
			}
			var tr *transientErr
			if ctx.Err() != nil || !errors.As(err, &tr) {
				return err
			}
			errRetries++
			if errRetries >= maxErrRetries {
				return fmt.Errorf("episimd: event stream for %s: giving up after %d attempts: %w",
					id, errRetries, tr.err)
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
			continue
		}
		// Clean end without a terminal event: reconnect immediately (the
		// server replays anything missed); repeated empty ends mean the
		// stream is genuinely going nowhere.
		if last < from {
			emptyEnds++
			if emptyEnds >= maxEmptyEnds {
				return fmt.Errorf("episimd: event stream for %s ended early", id)
			}
		}
	}
}

// streamOnce runs a single stream connection, reporting the last
// sequence number delivered to fn (from-1 when none) and whether a
// terminal event ended the stream. A connection that ends without a
// terminal event (slow-subscriber drop, proxy cut) returns a nil error
// so Stream can resume.
func (c *Client) streamOnce(ctx context.Context, id string, from int, fn func(Event) error) (last int, terminal bool, err error) {
	last = from - 1
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/sweeps/"+id+"/events?from="+strconv.Itoa(from), nil)
	if err != nil {
		return last, false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if c.ClientID != "" {
		req.Header.Set("X-Episim-Client", c.ClientID)
	}
	if from > 0 {
		// Redundant with ?from= (which the server prefers) but keeps
		// SSE-aware intermediaries informed of the resume point.
		req.Header.Set("Last-Event-ID", strconv.Itoa(from-1))
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return last, false, &transientErr{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		err := decodeError(resp)
		if resp.StatusCode >= 500 {
			return last, false, &transientErr{err}
		}
		return last, false, err
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var data strings.Builder
	dispatch := func() (bool, error) {
		if data.Len() == 0 {
			return false, nil
		}
		var ev Event
		if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
			return false, fmt.Errorf("episimd: bad stream event: %w", err)
		}
		data.Reset()
		if err := fn(ev); err != nil {
			return false, &callbackErr{err}
		}
		last = ev.Seq
		return ev.Type != "cell", nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			terminal, err := dispatch()
			if err != nil || terminal {
				return last, terminal, err
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
			// id: and event: lines are redundant with the payload's Seq/Type.
		}
	}
	if err := sc.Err(); err != nil {
		// Mid-stream transport failure (reset, cut proxy): resumable.
		return last, false, &transientErr{err}
	}
	return last, false, nil // ended without a terminal event: resumable
}
