package episim_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	episim "repro"
	"repro/internal/disease"
	"repro/internal/interventions"
)

// TestShippedDiseaseModelsParse validates every model file in models/.
func TestShippedDiseaseModelsParse(t *testing.T) {
	files, err := filepath.Glob("models/*.dm")
	if err != nil || len(files) < 3 {
		t.Fatalf("expected >=3 disease model files, got %v (%v)", files, err)
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		m, err := disease.ParseString(string(b))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		// Round trip through the formatter.
		if _, err := disease.ParseString(m.Format()); err != nil {
			t.Fatalf("%s: format round trip: %v", f, err)
		}
	}
}

// TestShippedScenariosParse validates every scenario file in scenarios/.
func TestShippedScenariosParse(t *testing.T) {
	files, err := filepath.Glob("scenarios/*.txt")
	if err != nil || len(files) < 2 {
		t.Fatalf("expected >=2 scenario files, got %v (%v)", files, err)
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := interventions.Parse(string(b)); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
	}
}

// TestShippedModelsProduceEpidemics runs each shipped disease model
// end-to-end on a small population: every model must produce spread
// beyond its index cases, and smallpox must be slower than influenza
// (longer incubation).
func TestShippedModelsProduceEpidemics(t *testing.T) {
	pop := episim.Generate("assets", 4000, 900, 9)
	pl, err := episim.BuildPlacement(pop, episim.PlacementOptions{Strategy: episim.RR, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	peakDay := map[string]int{}
	for _, f := range []string{"models/influenza.dm", "models/smallpox.dm", "models/h1n1-2009.dm"} {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		m, err := disease.ParseString(string(b))
		if err != nil {
			t.Fatal(err)
		}
		// Equalize transmissibility pressure so the comparison is about
		// timing structure, not calibration.
		m.Transmissibility = 2e-4
		res, err := episim.Run(pl, episim.SimConfig{
			Days: 120, Seed: 9, InitialInfections: 8, Model: m})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if res.TotalInfections < 50 {
			t.Fatalf("%s: no epidemic (%d infections)", f, res.TotalInfections)
		}
		day, best := 0, int64(0)
		for _, d := range res.Days {
			if d.NewInfections > best {
				best, day = d.NewInfections, d.Day
			}
		}
		name := strings.TrimSuffix(filepath.Base(f), ".dm")
		peakDay[name] = day
	}
	if peakDay["smallpox"] <= peakDay["influenza"] {
		t.Fatalf("smallpox (incubation 7-17d) should peak later than influenza: %v", peakDay)
	}
}
