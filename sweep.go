package episim

import (
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/synthpop"
)

// Re-exported sweep types: a SweepSpec declares grids over populations,
// placements, disease models and intervention scenarios with N seeded
// replicates per cell; RunSweep executes it and returns per-cell
// mean/quantile epidemic curves and attack-rate confidence intervals.
type (
	// SweepSpec is a declarative scenario sweep.
	SweepSpec = ensemble.Spec
	// SweepResult is a completed sweep with per-cell aggregates and
	// cache-reuse accounting.
	SweepResult = ensemble.SweepResult
	// SweepCellResult is the aggregate of one sweep cell.
	SweepCellResult = ensemble.CellResult
	// SweepPopulation, SweepPlacement, SweepModel and SweepScenario are
	// the axes of the sweep grid.
	SweepPopulation = ensemble.PopulationSpec
	SweepPlacement  = ensemble.PlacementSpec
	SweepModel      = ensemble.ModelSpec
	SweepScenario   = ensemble.ScenarioSpec
)

// ParseSweepSpec decodes and validates a SweepSpec from JSON.
func ParseSweepSpec(r io.Reader) (*SweepSpec, error) { return ensemble.ParseSpec(r) }

// RunSweep executes a scenario sweep over the grid the spec declares,
// with a bounded worker pool (spec.Workers) and a content-keyed cache
// that generates and partitions each unique (population, placement) pair
// exactly once — BuildPlacement dominates single-run wall time, so an
// R-replicate, S-scenario sweep reuses each placement R×S times. Results
// stream into per-cell aggregates; the output is byte-identical for any
// worker count.
func RunSweep(spec *SweepSpec) (*SweepResult, error) {
	return ensemble.Run(spec, ensemble.Hooks{
		GeneratePopulation: func(ps ensemble.PopulationSpec, seed uint64) (*synthpop.Population, error) {
			if ps.State != "" {
				return synthpop.GenerateState(ps.State, ps.Scale, seed)
			}
			return synthpop.Generate(synthpop.DefaultConfig(ps.Name, ps.People, ps.Locations, seed)), nil
		},
		BuildPlacement: func(pop *synthpop.Population, ps ensemble.PlacementSpec, seed uint64) (any, error) {
			strat := RR
			if strings.ToUpper(ps.Strategy) == "GP" {
				strat = GP
			}
			return BuildPlacement(pop, PlacementOptions{
				Strategy:  strat,
				SplitLoc:  ps.SplitLoc,
				Ranks:     ps.Ranks,
				Seed:      seed,
				Imbalance: ps.Imbalance,
			})
		},
		Simulate: func(pl any, job ensemble.Job) (*core.Result, error) {
			// The scenario text is re-parsed per run on purpose: a parsed
			// interventions.Scenario carries mutable rule-fired state, so
			// concurrent replicates cannot share one instance, and the
			// parse is microseconds against a multi-ms simulation.
			return Run(pl.(*Placement), SimConfig{
				Days:              job.Spec.Days,
				Seed:              job.Seed,
				InitialInfections: job.Spec.InitialInfections,
				Model:             job.Model,
				Scenario:          job.Cell.Scenario.Text,
				AggBufferSize:     job.Spec.AggBufferSize,
				Mixing:            job.Spec.Mixing,
			})
		},
	})
}
