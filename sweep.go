package episim

import (
	"context"
	"io"
	"strings"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/ensemble"
	"repro/internal/interventions"
	"repro/internal/obs"
	"repro/internal/synthpop"
)

// SweepTrace is a per-run span timeline (see SweepOptions.Trace); a
// server allocates one per submitted job and serves its snapshot on
// GET /v1/sweeps/{id}/trace. The zero value is unusable; nil is a
// valid "tracing off" value everywhere one is accepted.
type SweepTrace = obs.Timeline

// NewSweepTrace builds a timeline stamped with traceID.
func NewSweepTrace(traceID string) *SweepTrace { return obs.NewTimeline(traceID) }

// Re-exported sweep types: a SweepSpec declares grids over populations,
// placements, disease models and intervention scenarios with N seeded
// replicates per cell; RunSweep executes it and returns per-cell
// mean/quantile epidemic curves and attack-rate confidence intervals.
type (
	// SweepSpec is a declarative scenario sweep.
	SweepSpec = ensemble.Spec
	// SweepResult is a completed sweep with per-cell aggregates and
	// cache-reuse accounting.
	SweepResult = ensemble.SweepResult
	// SweepCellResult is the aggregate of one sweep cell.
	SweepCellResult = ensemble.CellResult
	// SweepPopulation, SweepPlacement, SweepModel and SweepScenario are
	// the axes of the sweep grid.
	SweepPopulation = ensemble.PopulationSpec
	SweepPlacement  = ensemble.PlacementSpec
	SweepModel      = ensemble.ModelSpec
	SweepScenario   = ensemble.ScenarioSpec
	// SweepIntervention is one branch of the intervention axis: a typed
	// schedule applied on top of every scenario from Spec.ForkDay on.
	SweepIntervention = ensemble.InterventionSpec
	// InterventionSchedule and its entry types describe a typed
	// intervention branch (compiled to scenario DSL rules at run time).
	InterventionSchedule    = interventions.Schedule
	InterventionClosure     = interventions.Closure
	InterventionVaccination = interventions.Vaccination
	InterventionQuarantine  = interventions.Quarantine
	// SweepSlots is a shared worker-slot pool bounding the total
	// simulation parallelism of every sweep that carries it.
	SweepSlots = ensemble.Slots
	// SweepCacheStats is a snapshot of one build cache's accounting.
	SweepCacheStats = ensemble.CacheStats
)

// NewSweepSlots builds a pool of n shared worker slots (n < 1 =
// GOMAXPROCS); pass it to several concurrent RunSweepContext calls to
// bound them together.
func NewSweepSlots(n int) *SweepSlots { return ensemble.NewSlots(n) }

// ParseSweepSpec decodes and validates a SweepSpec from JSON.
func ParseSweepSpec(r io.Reader) (*SweepSpec, error) { return ensemble.ParseSpec(r) }

// SweepCache holds process-lifetime population and placement caches.
// BuildPlacement dominates single-run wall time, so a server keeps one
// SweepCache for its whole life: concurrent requests with the same
// content keys share a single build (singleflight), repeated requests
// hit warm entries, and an LRU byte bound keeps the daemon's footprint
// flat. NewSweepCacheDir adds a disk tier behind the memory LRU, making
// the cache persistent across processes and restarts. The zero value is
// not usable; call NewSweepCache or NewSweepCacheDir.
type SweepCache struct {
	pop  *ensemble.Cache
	pl   *ensemble.Cache
	ckpt *ensemble.Cache
	// popStore/plStore/ckptStore back the disk tier (nil for memory-only
	// caches).
	popStore, plStore, ckptStore *artifact.Store
	// ckptRestores counts branch simulations resumed from a checkpoint;
	// ckptBytes accumulates the estimated size of checkpoints built.
	ckptRestores atomic.Int64
	ckptBytes    atomic.Int64
}

// NewSweepCache builds a shared cache bounded to roughly maxBytes of
// retained populations, checkpoints and placements combined (0 =
// unbounded): the budget is split a quarter to populations, a quarter to
// fork-point checkpoints and half to placements, which dominate (each
// charges its population's bytes too — a split population is private to
// its placement — so the bound is conservative).
func NewSweepCache(maxBytes int64) *SweepCache {
	popBudget := maxBytes / 4
	ckptBudget := maxBytes / 4
	plBudget := maxBytes - popBudget - ckptBudget
	return &SweepCache{
		pop: ensemble.NewCache(popBudget, func(v any) int64 {
			return populationBytes(v.(*synthpop.Population))
		}),
		pl: ensemble.NewCache(plBudget, func(v any) int64 {
			pl := v.(*Placement)
			return int64(4*(len(pl.PersonRank)+len(pl.LocationRank))) + populationBytes(pl.Pop)
		}),
		ckpt: ensemble.NewCache(ckptBudget, func(v any) int64 {
			return checkpointBytes(v.(*core.Checkpoint))
		}),
	}
}

// checkpointBytes approximates a checkpoint's retained size: the
// per-person health vectors dominate (~14 bytes each), plus the sparse
// infectious/progressing sets and the buffered prefix day reports.
func checkpointBytes(cp *core.Checkpoint) int64 {
	if cp == nil {
		return 0
	}
	n := int64(14*len(cp.States)) + 1024
	for _, set := range cp.Infectious {
		n += int64(4 * len(set))
	}
	for _, set := range cp.Progressing {
		n += int64(4 * len(set))
	}
	n += int64(2048 * len(cp.Days))
	return n
}

// populationBytes approximates a population's retained size (visits
// dominate: 16 bytes each).
func populationBytes(p *synthpop.Population) int64 {
	if p == nil {
		return 0
	}
	return int64(len(p.Visits))*16 +
		int64(len(p.Persons))*24 +
		int64(len(p.Locations))*24 +
		int64(len(p.PersonVisitOffsets))*4
}

// PopulationStats, PlacementStats and CheckpointStats snapshot the
// caches' hit/miss/eviction accounting (the substance of the daemon's
// /v1/stats reply).
func (c *SweepCache) PopulationStats() SweepCacheStats { return c.pop.Stats() }
func (c *SweepCache) PlacementStats() SweepCacheStats  { return c.pl.Stats() }
func (c *SweepCache) CheckpointStats() SweepCacheStats { return c.ckpt.Stats() }

// CheckpointRestores counts branch simulations that resumed from a
// fork-point checkpoint instead of simulating the shared prefix.
func (c *SweepCache) CheckpointRestores() int64 { return c.ckptRestores.Load() }

// CheckpointBytes is the cumulative estimated size of checkpoints built
// through this cache.
func (c *SweepCache) CheckpointBytes() int64 { return c.ckptBytes.Load() }

// SweepOptions are the service-grade extensions to RunSweepContext. The
// zero value (or nil) reproduces RunSweep's one-shot behavior.
type SweepOptions struct {
	// Cache, when non-nil, shares populations and placements across
	// every run that carries it (and across their concurrent workers).
	Cache *SweepCache
	// CacheDir, when Cache is nil and CacheDir is non-empty, backs the
	// run's private cache with the persistent artifact store at this
	// directory (see NewSweepCacheDir) — placements built by any earlier
	// process are loaded instead of rebuilt, and this run's builds are
	// written through for the next one.
	CacheDir string
	// OnCell streams each cell's aggregate the moment the cell
	// finalizes — before the rest of the grid completes. Called
	// concurrently from worker goroutines.
	OnCell func(SweepCellResult)
	// Slots, when non-nil, bounds this run's simulation work jointly
	// with every other run sharing the pool.
	Slots *SweepSlots
	// Trace, when non-nil, records the run's stage spans (population/
	// placement builds, per-replicate simulations, per-cell aggregation)
	// into the given timeline — the substance of the service's
	// GET /v1/sweeps/{id}/trace endpoint.
	Trace *SweepTrace
}

// resolveSweepOptions turns public options into executor options,
// creating a run-private SweepCache when none is shared — private runs
// still get a byte-sized cache the cost predictor can peek, so exact
// re-pricing after the first placement build works everywhere.
func resolveSweepOptions(opts *SweepOptions) (*ensemble.RunOptions, *SweepCache, error) {
	if opts == nil {
		opts = &SweepOptions{}
	}
	cache := opts.Cache
	if cache == nil {
		var err error
		cache, err = NewSweepCacheDir(0, opts.CacheDir)
		if err != nil {
			return nil, nil, err
		}
	}
	return &ensemble.RunOptions{
		PopulationCache: cache.pop,
		PlacementCache:  cache.pl,
		CheckpointCache: cache.ckpt,
		PredictCost:     predictCellCost(cache),
		OnCell:          opts.OnCell,
		Slots:           opts.Slots,
		Trace:           opts.Trace,
	}, cache, nil
}

// RunSweep executes a scenario sweep over the grid the spec declares,
// with a bounded worker pool (spec.Workers) and a content-keyed cache
// that generates and partitions each unique (population, placement) pair
// exactly once — BuildPlacement dominates single-run wall time, so an
// R-replicate, S-scenario sweep reuses each placement R×S times. Results
// stream into per-cell aggregates; the output is byte-identical for any
// worker count.
func RunSweep(spec *SweepSpec) (*SweepResult, error) {
	return RunSweepContext(context.Background(), spec, nil)
}

// RunSweepContext is RunSweep with cancellation and service hooks: a
// canceled ctx stops dispatching promptly (in-flight replicates finish)
// and returns ctx.Err(); opts wires cross-request caching, per-cell
// streaming and a shared worker-slot pool. Jobs are dispatched
// most-expensive-cell-first using the Blue Waters machine model as the
// cost oracle (ModelSweepSeconds on already-built placements, an
// analytic visit-count estimate otherwise), cutting makespan on grids
// with skewed cell sizes. When some cells fail, RunSweepContext returns
// the partial result alongside the error; failed cells carry Error in
// place of aggregates.
func RunSweepContext(ctx context.Context, spec *SweepSpec, opts *SweepOptions) (*SweepResult, error) {
	ro, cache, err := resolveSweepOptions(opts)
	if err != nil {
		return nil, err
	}
	return ensemble.RunContext(ctx, spec, sweepHooks(cache), ro)
}

// SweepWarmResult reports what WarmSweep built versus found cached.
type SweepWarmResult = ensemble.WarmResult

// WarmSweep builds every unique population and placement of the spec's
// grid without running a single simulation — the pre-warm pass behind
// `sweep -warm -cache-dir`: CI or an operator populates the artifact
// store once, and every subsequent run of the spec (any process, any
// machine sharing the directory) performs zero placement builds.
func WarmSweep(ctx context.Context, spec *SweepSpec, opts *SweepOptions) (*SweepWarmResult, error) {
	ro, cache, err := resolveSweepOptions(opts)
	if err != nil {
		return nil, err
	}
	return ensemble.WarmContext(ctx, spec, sweepHooks(cache), ro)
}

// predictCellCost prices a sweep cell in modeled Blue Waters seconds for
// longest-processing-time dispatch. A placement already resident in the
// shared cache is priced exactly with the machine model; anything else
// falls back to the dominant analytic term of the person phase — people
// × visits/person/day × per-visit seconds × days — which lands in the
// same decade, so mixed exact/estimated grids still order sensibly.
func predictCellCost(cache *SweepCache) func(ensemble.Cell, *ensemble.Spec) float64 {
	opt := DefaultPerfOptions()
	return func(cell ensemble.Cell, spec *ensemble.Spec) float64 {
		// Intervention cells resume from the shared fork-point
		// checkpoint, so they only pay for the suffix days.
		costDays := spec.Days
		if cell.Intervention != nil && spec.ForkDay > 0 {
			costDays = spec.Days - spec.ForkDay
		}
		popKey := cell.Population.Key(spec.Seed)
		if cache != nil {
			if v, ok := cache.pl.Peek(cell.Placement.Key(popKey)); ok {
				return ModelSweepSeconds(v.(*Placement), costDays, opt)
			}
		}
		people := float64(cell.Population.People)
		if cell.Population.State != "" && cell.Population.Scale > 0 {
			if p, err := synthpop.PresetByName(cell.Population.State); err == nil {
				people = float64(p.People) / float64(cell.Population.Scale)
			}
		}
		const visitsPerPersonDay = 5.5 // synthpop calibration target
		days := float64(costDays)
		if days < 1 {
			days = 1
		}
		return people * visitsPerPersonDay * opt.PersonSecPerVisit * days
	}
}

// combinedScenarioText is the scenario a cell's branch actually runs:
// the base scenario text with the intervention schedule's compiled rules
// appended (legacy cells — no intervention — run the base text alone).
// Every compiled rule triggers strictly after Spec.ForkDay, so the
// combined scenario's prefix behavior is identical to the base
// scenario's — the foundation of fork-vs-scratch byte identity.
func combinedScenarioText(job ensemble.Job) string {
	base := job.Cell.Scenario.Text
	if job.Cell.Intervention == nil {
		return base
	}
	branch := job.Cell.Intervention.Compile()
	if branch == "" {
		return base
	}
	if strings.TrimSpace(base) == "" {
		return branch
	}
	return strings.TrimRight(base, "\n") + "\n" + branch
}

// simConfigFor maps a sweep job onto a SimConfig running the given
// scenario text.
func simConfigFor(job ensemble.Job, scenario string) SimConfig {
	return SimConfig{
		Days:              job.Spec.Days,
		Seed:              job.Seed,
		InitialInfections: job.Spec.InitialInfections,
		Model:             job.Model,
		Scenario:          scenario,
		AggBufferSize:     job.Spec.AggBufferSize,
		Mixing:            job.Spec.Mixing,
		Kernel:            job.Spec.Kernel,
		KernelThreshold:   job.Spec.KernelThreshold,
	}
}

// sweepHooks wires the real engine into the ensemble executor. The
// fork trio (BuildCheckpoint/RestoreCheckpoint/ResumeSimulate) runs
// intervention cells in fork mode: the shared scenario prefix simulates
// once per checkpoint key, and every branch resumes from the snapshot.
func sweepHooks(cache *SweepCache) ensemble.Hooks {
	return ensemble.Hooks{
		GeneratePopulation: func(ps ensemble.PopulationSpec, seed uint64) (*synthpop.Population, error) {
			if ps.State != "" {
				return synthpop.GenerateState(ps.State, ps.Scale, seed)
			}
			return synthpop.Generate(synthpop.DefaultConfig(ps.Name, ps.People, ps.Locations, seed)), nil
		},
		BuildPlacement: func(pop *synthpop.Population, ps ensemble.PlacementSpec, seed uint64) (any, error) {
			strat := RR
			if strings.ToUpper(ps.Strategy) == "GP" {
				strat = GP
			}
			return BuildPlacement(pop, PlacementOptions{
				Strategy:  strat,
				SplitLoc:  ps.SplitLoc,
				Ranks:     ps.Ranks,
				Seed:      seed,
				Imbalance: ps.Imbalance,
			})
		},
		Simulate: func(pl any, job ensemble.Job) (*core.Result, error) {
			// The scenario text is re-parsed per run on purpose: a parsed
			// interventions.Scenario carries mutable rule-fired state, so
			// concurrent replicates cannot share one instance, and the
			// parse is microseconds against a multi-ms simulation.
			return Run(pl.(*Placement), simConfigFor(job, combinedScenarioText(job)))
		},
		BuildCheckpoint: func(pl any, job ensemble.Job) (any, error) {
			// The prefix runs the base scenario only: branch rules cannot
			// fire before the fork day, so the checkpoint is shared by
			// every branch of the cell's intervention axis.
			eng, err := newSimEngine(pl.(*Placement), simConfigFor(job, job.Cell.Scenario.Text))
			if err != nil {
				return nil, err
			}
			cp, err := eng.RunPrefix(job.Spec.ForkDay)
			if err != nil {
				return nil, err
			}
			if cache != nil {
				cache.ckptBytes.Add(checkpointBytes(cp))
			}
			return cp, nil
		},
		RestoreCheckpoint: func(pl any, checkpoint any, job ensemble.Job) (any, error) {
			eng, err := newSimEngine(pl.(*Placement), simConfigFor(job, combinedScenarioText(job)))
			if err != nil {
				return nil, err
			}
			if err := eng.Restore(checkpoint.(*core.Checkpoint)); err != nil {
				return nil, err
			}
			if cache != nil {
				cache.ckptRestores.Add(1)
			}
			return eng, nil
		},
		ResumeSimulate: func(engine any, job ensemble.Job) (*core.Result, error) {
			return engine.(*core.Engine).Run()
		},
	}
}
