#!/usr/bin/env bash
# promlint.sh — basic well-formedness lint for Prometheus text exposition.
#
# Usage: scripts/promlint.sh metrics.txt [more.txt ...]
#
# Checks, per file:
#   - every sample line parses as `name{labels} value`
#   - every series has a preceding # HELP and # TYPE block
#   - TYPE values are legal (counter|gauge|histogram|summary|untyped)
#   - counters (and histogram samples) are never negative
#   - histogram buckets are cumulative (non-decreasing in le order) and
#     the +Inf bucket equals the family's _count
#
# No dependencies beyond awk — CI runs it against both the daemon's and
# the gateway's /metrics scrape after the smoke sweep.
set -eu

if [ "$#" -eq 0 ]; then
    echo "usage: $0 metrics.txt [more.txt ...]" >&2
    exit 2
fi

status=0
for f in "$@"; do
    if ! awk '
        /^# HELP / { help[$3] = 1; next }
        /^# TYPE / {
            type[$3] = $4
            if ($4 !~ /^(counter|gauge|histogram|summary|untyped)$/) {
                printf "  bad TYPE %s for %s\n", $4, $3; bad = 1
            }
            next
        }
        /^#/ { next }
        /^[[:space:]]*$/ { next }
        {
            if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?([0-9.eE+-]+|\+Inf|NaN)$/) {
                printf "  malformed sample line: %s\n", $0; bad = 1; next
            }
            name = $1; sub(/\{.*/, "", name)
            base = name
            sub(/_(bucket|sum|count)$/, "", base)
            hist = (base in type && type[base] == "histogram")
            if (!(name in type) && !hist) {
                printf "  series %s has no # TYPE\n", name; bad = 1
            }
            if (!(name in help) && !(base in help)) {
                printf "  series %s has no # HELP\n", name; bad = 1
            }
            if ($2 + 0 < 0 && (type[name] == "counter" || hist)) {
                printf "  negative counter sample: %s\n", $0; bad = 1
            }
            if (name ~ /_bucket$/ && hist) {
                grp = $1
                sub(/,?le="[^"]*"/, "", grp)
                sub(/\{\}/, "", grp)
                if (grp in lastv && $2 + 0 < lastv[grp]) {
                    printf "  non-cumulative bucket: %s\n", $0; bad = 1
                }
                lastv[grp] = $2 + 0
                if ($1 ~ /le="\+Inf"/) inf[grp] = $2 + 0
            }
            if (name ~ /_count$/ && hist) {
                grp = $1
                sub(/_count/, "_bucket", grp)
                sub(/\{\}/, "", grp)
                cnt[grp] = $2 + 0
            }
        }
        END {
            for (g in cnt) {
                if (!(g in inf)) {
                    printf "  histogram %s has no +Inf bucket\n", g; bad = 1
                } else if (inf[g] != cnt[g]) {
                    printf "  histogram %s: +Inf bucket %g != _count %g\n", g, inf[g], cnt[g]; bad = 1
                }
            }
            exit bad
        }
    ' "$f"; then
        echo "promlint: $f FAILED" >&2
        status=1
    else
        echo "promlint: $f ok"
    fi
done
exit $status
