#!/usr/bin/env bash
# bench_sweep.sh — the per-PR perf trajectory record.
#
# Thin wrapper over `episim-bench -preset sweep`: the historical
# cold-vs-warm service sweep (bench-town 2000×200, RR×4 and
# GP-splitLoc×4) now runs as matrix cells through the same in-process
# harness CI gates on, so BENCH_sweep.json carries real wall/peak-RSS/
# component measurements instead of shell-timed millisecond deltas (and
# needs no GNU-only `date +%s%3N`). The headline microbenchmark still
# runs first, to stderr, for the log trail.
#
# Usage: scripts/bench_sweep.sh [output.json]
set -eu

out=${1:-BENCH_sweep.json}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== go test -bench BenchmarkSweepPlacementCache -benchtime 3x" >&2
go test -run '^$' -bench BenchmarkSweepPlacementCache -benchtime 3x . >&2

echo "== episim-bench -preset sweep" >&2
go build -o "$workdir/episim-bench" ./cmd/episim-bench
"$workdir/episim-bench" -preset sweep -out "$out"

echo "wrote $out" >&2
cat "$out"
