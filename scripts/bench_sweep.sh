#!/usr/bin/env bash
# bench_sweep.sh — the per-PR perf trajectory record.
#
# Runs the sweep subsystem's headline benchmark
# (BenchmarkSweepPlacementCache: simulations amortized per placement
# build) plus a cold-vs-warm service sweep through the real `sweep` CLI
# and persistent cache dir, and emits one JSON document (BENCH_sweep.json
# by default) that CI uploads as a build artifact — so every PR leaves a
# comparable perf datapoint instead of a green checkmark.
#
# Usage: scripts/bench_sweep.sh [output.json]
set -eu

out=${1:-BENCH_sweep.json}
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== go test -bench BenchmarkSweepPlacementCache -benchtime 3x" >&2
go test -run '^$' -bench BenchmarkSweepPlacementCache -benchtime 3x . | tee "$workdir/bench.out" >&2

# Parse "BenchmarkSweepPlacementCache-8  3  123456 ns/op  16.00 sims/build".
bench_line=$(grep '^BenchmarkSweepPlacementCache' "$workdir/bench.out" | head -1)
ns_per_op=$(echo "$bench_line" | awk '{print $3}')
sims_per_build=$(echo "$bench_line" | awk '{for (i=1; i<=NF; i++) if ($i == "sims/build") print $(i-1)}')

echo "== cold vs warm service sweep" >&2
go build -o "$workdir/sweep" ./cmd/sweep
cat > "$workdir/spec.json" <<'SPEC'
{
  "populations": [{"name": "bench-town", "people": 2000, "locations": 200}],
  "placements": [{"strategy": "RR", "ranks": 4},
                 {"strategy": "GP", "splitloc": true, "ranks": 4}],
  "replicates": 3, "days": 10, "seed": 7
}
SPEC

now_ms() { date +%s%3N; }

t0=$(now_ms)
"$workdir/sweep" -spec "$workdir/spec.json" -cache-dir "$workdir/cache" -out "$workdir/cold.json" 2> "$workdir/cold.log"
t1=$(now_ms)
"$workdir/sweep" -spec "$workdir/spec.json" -cache-dir "$workdir/cache" -out "$workdir/warm.json" 2> "$workdir/warm.log"
t2=$(now_ms)
cat "$workdir/cold.log" "$workdir/warm.log" >&2

cold_ms=$((t1 - t0))
warm_ms=$((t2 - t1))
cmp "$workdir/cold.json" "$workdir/warm.json" # warm run must be byte-identical
grep -q '(0 placements built' "$workdir/warm.log" # and build nothing

commit=$(git rev-parse HEAD 2>/dev/null || echo unknown)
cat > "$out" <<JSON
{
  "commit": "$commit",
  "timestamp_utc": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go_version": "$(go version | awk '{print $3}')",
  "placement_cache_bench": {
    "name": "BenchmarkSweepPlacementCache",
    "benchtime": "3x",
    "ns_per_op": ${ns_per_op:-null},
    "sims_per_build": ${sims_per_build:-null}
  },
  "service_sweep": {
    "cold_ms": $cold_ms,
    "warm_ms": $warm_ms,
    "warm_speedup": $(awk "BEGIN {printf \"%.2f\", $cold_ms / ($warm_ms == 0 ? 1 : $warm_ms)}"),
    "warm_zero_builds": true,
    "byte_identical": true
  }
}
JSON
echo "wrote $out" >&2
cat "$out"
