package episim_test

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	episim "repro"
)

// forkBranches is a small counterfactual axis: the do-nothing baseline,
// a school closure and a vaccination+quarantine package, all triggering
// strictly after the fork day.
func forkBranches() []episim.SweepIntervention {
	return []episim.SweepIntervention{
		{Name: "baseline"},
		{Name: "closure", Schedule: episim.InterventionSchedule{
			Closures: []episim.InterventionClosure{{LocType: "school", Day: 11, Days: 5}},
		}},
		{Name: "vax-iso", Schedule: episim.InterventionSchedule{
			Vaccinations: []episim.InterventionVaccination{{Day: 12, Fraction: 0.3}},
			Quarantines:  []episim.InterventionQuarantine{{State: "symptomatic", Day: 11, Days: 7}},
		}},
	}
}

// TestForkSweepMatchesScratchSweep is the end-to-end equivalence
// oracle: a version 2 sweep (intervention axis, fork-point resume) must
// aggregate identically to a version 1 sweep whose scenarios carry the
// same combined base+branch text and simulate every day from scratch —
// fork mode is an execution strategy, not a semantic change.
func TestForkSweepMatchesScratchSweep(t *testing.T) {
	closure, err := os.ReadFile("scenarios/school-closure.txt")
	if err != nil {
		t.Fatal(err)
	}
	base := &episim.SweepSpec{
		Populations: []episim.SweepPopulation{{Name: "forktown", People: 2500, Locations: 500}},
		Placements:  []episim.SweepPlacement{{Strategy: "RR", Ranks: 4}},
		Scenarios: []episim.SweepScenario{
			{Name: "open"},
			{Name: "reactive", Text: string(closure)},
		},
		Replicates:        2,
		Days:              24,
		Seed:              7,
		InitialInfections: 5,
	}

	forked := *base
	forked.Interventions = forkBranches()
	forked.ForkDay = 10
	fres, err := episim.RunSweep(&forked)
	if err != nil {
		t.Fatal(err)
	}

	// The scratch twin: one legacy scenario per (base scenario, branch),
	// in the grid order Cells() enumerates (branches innermost).
	scratch := *base
	scratch.Scenarios = nil
	for _, sc := range base.Scenarios {
		for _, iv := range forkBranches() {
			text := sc.Text
			if branch := iv.Schedule.Compile(); branch != "" {
				if strings.TrimSpace(text) == "" {
					text = branch
				} else {
					text = strings.TrimRight(text, "\n") + "\n" + branch
				}
			}
			scratch.Scenarios = append(scratch.Scenarios,
				episim.SweepScenario{Name: sc.Name + "+" + iv.Name, Text: text})
		}
	}
	sres, err := episim.RunSweep(&scratch)
	if err != nil {
		t.Fatal(err)
	}

	if len(fres.Cells) != 6 || len(sres.Cells) != 6 {
		t.Fatalf("cells = %d forked / %d scratch, want 6 each", len(fres.Cells), len(sres.Cells))
	}
	for i, fc := range fres.Cells {
		sc := sres.Cells[i]
		if fc.Error != "" || sc.Error != "" {
			t.Fatalf("cell %d failed: %q / %q", i, fc.Error, sc.Error)
		}
		if !reflect.DeepEqual(fc.MeanCurve, sc.MeanCurve) ||
			!reflect.DeepEqual(fc.QuantileCurves, sc.QuantileCurves) {
			t.Fatalf("cell %d (%s): forked curves differ from scratch (%s)", i, fc.Label, sc.Label)
		}
		if !reflect.DeepEqual(fc.AttackRate, sc.AttackRate) ||
			!reflect.DeepEqual(fc.TotalInfections, sc.TotalInfections) {
			t.Fatalf("cell %d (%s): forked aggregates differ from scratch", i, fc.Label)
		}
	}

	// The branches only make sense if they actually diverge after the
	// fork: the closure branch must not track the do-nothing baseline.
	if reflect.DeepEqual(fres.Cells[0].MeanCurve, fres.Cells[1].MeanCurve) {
		t.Fatal("closure branch identical to baseline — interventions had no effect")
	}

	// Fork-mode economics with the real engine: one prefix per (base
	// scenario, replicate) — 2 × 2 = 4 checkpoints — and strictly fewer
	// stepped days than the scratch twin.
	if len(fres.CheckpointBuilds) != 4 {
		t.Fatalf("checkpoint keys = %d, want 4", len(fres.CheckpointBuilds))
	}
	for key, n := range fres.CheckpointBuilds {
		if n != 1 {
			t.Fatalf("checkpoint %q built %d times", key, n)
		}
	}
	wantDays := int64(4*forked.ForkDay + 12*(forked.Days-forked.ForkDay))
	if fres.SimulatedDays != wantDays {
		t.Fatalf("forked simulated days = %d, want %d", fres.SimulatedDays, wantDays)
	}
	if sres.SimulatedDays != int64(12*base.Days) {
		t.Fatalf("scratch simulated days = %d, want %d", sres.SimulatedDays, 12*base.Days)
	}
	if fres.SimulatedDays >= sres.SimulatedDays {
		t.Fatalf("fork mode stepped %d days, not fewer than scratch's %d",
			fres.SimulatedDays, sres.SimulatedDays)
	}
}

// TestForkSweep16BranchWarmReuse pins the acceptance numbers on a
// 16-branch counterfactual sweep: cold, the run simulates prefix-once +
// sixteen suffixes (far under sixteen from-scratch horizons); warm over
// the same cache dir, a fresh process pays zero prefix days — every
// branch restores from the disk-tier checkpoint — and emits
// byte-identical JSON.
func TestForkSweep16BranchWarmReuse(t *testing.T) {
	ivs := make([]episim.SweepIntervention, 16)
	for i := range ivs {
		ivs[i] = episim.SweepIntervention{
			Name: fmt.Sprintf("close%d", i),
			Schedule: episim.InterventionSchedule{
				Closures: []episim.InterventionClosure{{LocType: "school", Day: 13, Days: i + 1}},
			},
		}
	}
	spec := &episim.SweepSpec{
		Populations:       []episim.SweepPopulation{{Name: "forktown", People: 2000, Locations: 400}},
		Placements:        []episim.SweepPlacement{{Strategy: "RR", Ranks: 4}},
		Interventions:     ivs,
		ForkDay:           12,
		Replicates:        1,
		Days:              20,
		Seed:              11,
		InitialInfections: 5,
	}
	dir := t.TempDir()

	var outs []string
	for run := 0; run < 2; run++ {
		cache, err := episim.NewSweepCacheDir(0, dir)
		if err != nil {
			t.Fatal(err)
		}
		res, err := episim.RunSweepContext(t.Context(), spec, &episim.SweepOptions{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if res.Simulations != 16 {
			t.Fatalf("run %d: simulations = %d, want 16", run, res.Simulations)
		}
		suffix := int64(16 * (spec.Days - spec.ForkDay))
		if run == 0 {
			// Cold: one prefix build + sixteen suffixes, against 16 × 20
			// from scratch.
			if want := int64(spec.ForkDay) + suffix; res.SimulatedDays != want {
				t.Fatalf("cold simulated days = %d, want %d", res.SimulatedDays, want)
			}
			if res.SimulatedDays >= int64(16*spec.Days) {
				t.Fatal("16-branch fork sweep did not beat from-scratch person-days")
			}
			if len(res.CheckpointBuilds) != 1 {
				t.Fatalf("cold checkpoint keys = %v, want one", res.CheckpointBuilds)
			}
			for key, n := range res.CheckpointBuilds {
				if n != 1 {
					t.Fatalf("cold: checkpoint %q built %d times", key, n)
				}
			}
		} else {
			// Warm: the disk tier serves the prefix; zero prefix days paid.
			if res.SimulatedDays != suffix {
				t.Fatalf("warm simulated days = %d, want %d (zero prefix)", res.SimulatedDays, suffix)
			}
			for key, n := range res.CheckpointBuilds {
				if n != 0 {
					t.Fatalf("warm run rebuilt checkpoint %q %d times", key, n)
				}
			}
		}
		if got := cache.CheckpointRestores(); got != 16 {
			t.Fatalf("run %d: checkpoint restores = %d, want 16", run, got)
		}
		if ck, ok := cache.CheckpointStoreStats(); !ok || ck.Files < 1 {
			t.Fatalf("run %d: checkpoint store stats = %+v ok=%v", run, ck, ok)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.String())
	}
	if outs[0] != outs[1] {
		t.Fatal("cold and warm fork sweeps emitted different JSON")
	}
}
