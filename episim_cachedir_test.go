package episim_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	episim "repro"
)

// cacheDirSpec is a small grid that exercises both strategies and the
// splitLoc preprocessing, so the placement artifacts carry split stats
// and partition quality through the codec.
func cacheDirSpec() *episim.SweepSpec {
	s := &episim.SweepSpec{
		Populations: []episim.SweepPopulation{{Name: "cachetown", People: 500, Locations: 50}},
		Placements: []episim.SweepPlacement{
			{Strategy: "RR", Ranks: 4},
			{Strategy: "GP", SplitLoc: true, Ranks: 4},
		},
		Scenarios:         []episim.SweepScenario{{Name: "baseline"}},
		Replicates:        3,
		Days:              10,
		Seed:              99,
		InitialInfections: 5,
	}
	s.Normalize()
	return s
}

func runWithDir(t *testing.T, dir string) (*episim.SweepResult, *episim.SweepCache, []byte) {
	t.Helper()
	cache, err := episim.NewSweepCacheDir(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := episim.RunSweepContext(context.Background(), cacheDirSpec(), &episim.SweepOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	var js bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	return res, cache, js.Bytes()
}

// TestSweepCacheDirWarmRun is the acceptance test for the persistent
// placement cache: a second process (modeled as a fresh cache over the
// same directory) performs ZERO placement builds and produces
// byte-identical aggregate JSON to the cold run.
func TestSweepCacheDirWarmRun(t *testing.T) {
	dir := t.TempDir()

	cold, coldCache, coldJSON := runWithDir(t, dir)
	for key, n := range cold.PlacementBuilds {
		if n != 1 {
			t.Fatalf("cold run built %q %d times, want 1", key, n)
		}
	}
	if st := coldCache.PlacementStats(); st.Builds != 2 || st.DiskWrites != 2 {
		t.Fatalf("cold placement cache stats = %+v, want 2 builds written through", st)
	}
	if pop, pl, ok := coldCache.StoreStats(); !ok || pop.Files != 1 || pl.Files != 2 {
		t.Fatalf("store stats = %+v / %+v / %v, want 1 population + 2 placement artifacts", pop, pl, ok)
	}

	warm, warmCache, warmJSON := runWithDir(t, dir)
	for key, n := range warm.PopulationBuilds {
		if n != 0 {
			t.Fatalf("warm run generated population %q %d times, want 0", key, n)
		}
	}
	for key, n := range warm.PlacementBuilds {
		if n != 0 {
			t.Fatalf("warm run built placement %q %d times, want 0", key, n)
		}
	}
	st := warmCache.PlacementStats()
	if st.Builds != 0 || st.DiskHits != 2 {
		t.Fatalf("warm placement cache stats = %+v, want 0 builds / 2 disk hits", st)
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Fatal("warm run JSON differs from cold run JSON")
	}
}

// TestSweepCacheDirCorruptArtifactRebuilds: damage one placement
// artifact on disk; the next run treats it as a miss, rebuilds, rewrites
// it, and still produces identical output.
func TestSweepCacheDirCorruptArtifactRebuilds(t *testing.T) {
	dir := t.TempDir()
	_, _, coldJSON := runWithDir(t, dir)

	// Truncate every placement artifact (simulating torn writes).
	var damaged int
	err := filepath.Walk(filepath.Join(dir, "placements"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || filepath.Ext(path) != ".art" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		damaged++
		return os.WriteFile(path, data[:len(data)*2/3], 0o644)
	})
	if err != nil || damaged != 2 {
		t.Fatalf("damaged %d artifacts (%v), want 2", damaged, err)
	}

	res, cache, js := runWithDir(t, dir)
	for key, n := range res.PlacementBuilds {
		if n != 1 {
			t.Fatalf("post-corruption run built %q %d times, want 1 (rebuild)", key, n)
		}
	}
	st := cache.PlacementStats()
	if st.DiskErrors != 2 || st.Builds != 2 || st.DiskWrites != 2 {
		t.Fatalf("stats = %+v, want 2 disk errors, 2 rebuilds, 2 re-writes", st)
	}
	if !bytes.Equal(coldJSON, js) {
		t.Fatal("rebuilt run JSON differs")
	}

	// And the rewrite healed the store: one more run is fully warm.
	res2, cache2, _ := runWithDir(t, dir)
	if cache2.PlacementStats().Builds != 0 {
		t.Fatalf("healed run still built placements: %+v", res2.PlacementBuilds)
	}
}

// TestWarmSweepPopulatesCacheDir: `sweep -warm` semantics — a warm pass
// builds the artifacts, and a later real run builds nothing.
func TestWarmSweepPopulatesCacheDir(t *testing.T) {
	dir := t.TempDir()
	spec := cacheDirSpec()

	w, err := episim.WarmSweep(context.Background(), spec, &episim.SweepOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if w.Placements != 2 || w.Built() != 2 {
		t.Fatalf("warm pass = %+v, want 2 placements built", w)
	}

	// Re-warming against the same directory builds nothing.
	w2, err := episim.WarmSweep(context.Background(), spec, &episim.SweepOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Built() != 0 {
		t.Fatalf("second warm pass built %d, want 0", w2.Built())
	}

	// A real run over the warmed directory: zero builds, via the
	// SweepOptions.CacheDir path rather than an explicit cache.
	res, err := episim.RunSweepContext(context.Background(), spec, &episim.SweepOptions{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for key, n := range res.PlacementBuilds {
		if n != 0 {
			t.Fatalf("post-warm run built %q %d times, want 0", key, n)
		}
	}
}
