package episim_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	episim "repro"
)

// sweepSpec is the acceptance-criteria sweep: a Table I state, two
// placement labels × two scenarios × eight replicates.
func sweepSpec(workers int) *episim.SweepSpec {
	scenario, err := os.ReadFile("scenarios/school-closure.txt")
	if err != nil {
		panic(err)
	}
	return &episim.SweepSpec{
		Populations: []episim.SweepPopulation{{State: "WY", Scale: 600}},
		Placements: []episim.SweepPlacement{
			{Strategy: "RR", Ranks: 8},
			{Strategy: "GP", SplitLoc: true, Ranks: 8},
		},
		Scenarios: []episim.SweepScenario{
			{Name: "baseline"},
			{Name: "school-closure", Text: string(scenario)},
		},
		Replicates:        8,
		Days:              30,
		Seed:              7,
		InitialInfections: 5,
		AggBufferSize:     64,
		Workers:           workers,
	}
}

func TestRunSweepEndToEnd(t *testing.T) {
	res, err := episim.RunSweep(sweepSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Simulations != 2*2*8 {
		t.Fatalf("simulations = %d, want 32", res.Simulations)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}

	// The headline guarantee: each unique (population, placement) pair was
	// generated and partitioned exactly once, shared by all 16 runs that
	// use it.
	if len(res.PopulationBuilds) != 1 {
		t.Fatalf("population builds = %v, want one key", res.PopulationBuilds)
	}
	if len(res.PlacementBuilds) != 2 {
		t.Fatalf("placement builds = %v, want two keys", res.PlacementBuilds)
	}
	for key, n := range res.PlacementBuilds {
		if n != 1 {
			t.Fatalf("placement %q built %d times, want 1", key, n)
		}
	}

	seenLabels := map[string]bool{}
	for _, c := range res.Cells {
		seenLabels[c.Placement] = true
		if c.Replicates != 8 || c.Days != 30 {
			t.Fatalf("cell %s shape: %d reps × %d days", c.Label, c.Replicates, c.Days)
		}
		if c.TotalInfections.Mean < float64(5) {
			t.Fatalf("cell %s: mean infections %v below index cases", c.Label, c.TotalInfections.Mean)
		}
		if !(c.AttackRate.CILo <= c.AttackRate.Mean && c.AttackRate.Mean <= c.AttackRate.CIHi) {
			t.Fatalf("cell %s: CI [%v, %v] does not bracket mean %v",
				c.Label, c.AttackRate.CILo, c.AttackRate.CIHi, c.AttackRate.Mean)
		}
		if len(c.MeanCurve) != 30 || len(c.QuantileCurves) != 3 {
			t.Fatalf("cell %s: curve shapes %d/%d", c.Label, len(c.MeanCurve), len(c.QuantileCurves))
		}
		// p10 <= mean-ish median <= p90, day by day.
		for d := 0; d < c.Days; d++ {
			if c.QuantileCurves[0][d] > c.QuantileCurves[2][d] {
				t.Fatalf("cell %s day %d: p10 %v > p90 %v",
					c.Label, d, c.QuantileCurves[0][d], c.QuantileCurves[2][d])
			}
		}
	}
	if !seenLabels["RR×8"] || !seenLabels["GP-splitLoc×8"] {
		t.Fatalf("placement labels = %v", seenLabels)
	}

	// Both emitters produce the mean + p10/p90 curves and attack CIs.
	var csv bytes.Buffer
	if err := res.WriteCurvesCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "population,placement,model,scenario,day,mean,q10,q50,q90") {
		t.Fatalf("curves header = %q", strings.SplitN(csv.String(), "\n", 2)[0])
	}
	if got := strings.Count(csv.String(), "\n"); got != 1+4*30 {
		t.Fatalf("curve rows = %d, want %d", got, 1+4*30)
	}
	var sum bytes.Buffer
	if err := res.WriteSummaryCSV(&sum); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.String(), "attack_ci_lo,attack_ci_hi") {
		t.Fatal("summary CSV missing attack-rate CI columns")
	}

	var js bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"attack_rate"`, `"quantile_curves"`} {
		if !strings.Contains(js.String(), want) {
			t.Fatalf("JSON missing %s", want)
		}
	}
	// Build accounting is execution state, not result: it must NOT be in
	// the emitted JSON, or a warm run (0 builds) and a cold run (1 build)
	// of the same spec could never be byte-identical.
	if strings.Contains(js.String(), `"placement_builds"`) {
		t.Fatal("JSON leaks placement_builds execution accounting")
	}

	byKey := map[string]episim.SweepCellResult{}
	for _, c := range res.Cells {
		byKey[c.Placement+"/"+c.Scenario] = c
	}

	// Replicate seeds are shared across placements, and the engine
	// guarantees bit-identical trajectories across data distributions —
	// so RR and GP cells of the same scenario must aggregate identically.
	for _, scn := range []string{"baseline", "school-closure"} {
		rr, gp := byKey["RR×8/"+scn], byKey["GP-splitLoc×8/"+scn]
		for d := range rr.MeanCurve {
			if rr.MeanCurve[d] != gp.MeanCurve[d] {
				t.Fatalf("%s day %d: RR curve %v != GP curve %v (distribution invariance broken)",
					scn, d, rr.MeanCurve[d], gp.MeanCurve[d])
			}
		}
	}

	// Common random numbers pair the scenarios: school closure must not
	// exceed its baseline's attack rate beyond stochastic slack.
	for _, pl := range []string{"RR×8", "GP-splitLoc×8"} {
		base, closed := byKey[pl+"/baseline"], byKey[pl+"/school-closure"]
		if closed.AttackRate.Mean > base.AttackRate.Mean*1.05 {
			t.Fatalf("%s: closure attack %.4f noticeably above baseline %.4f",
				pl, closed.AttackRate.Mean, base.AttackRate.Mean)
		}
	}
}

// TestRunSweepDeterministic: the same spec + master seed must produce
// byte-identical aggregate JSON across runs, sequential or parallel.
func TestRunSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full sweeps")
	}
	var outs []string
	for _, workers := range []int{1, 8} {
		res, err := episim.RunSweep(sweepSpec(workers))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.String())
	}
	if outs[0] != outs[1] {
		t.Fatal("sweep JSON differs between sequential and parallel execution")
	}
}
